//! The request-execution pool: a fixed set of threads draining a shared
//! job queue, so the reactor thread never runs a request itself.
//!
//! The queue is effectively bounded by the reactor's dispatch
//! discipline (at most one in-flight request per connection, and
//! connections are bounded), so no separate queue bound is needed.
//! Shutdown drains: queued jobs still run before workers exit, which is
//! what lets the reactor flush their responses during its drain phase.
//!
//! Workers are panic-isolated: a job that panics is caught inside the
//! worker loop, counted on the pool's [`ConnectionCounters`] (when it
//! has one), and the thread keeps draining the queue. One poisonous
//! request can therefore never thin the pool — the `workers_alive`
//! gauge stays flat through a panic storm.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};

use crate::counters::ConnectionCounters;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    stop: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
    counters: Option<ConnectionCounters>,
}

/// A fixed-size worker pool executing boxed jobs in FIFO order.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.threads.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) named
    /// `{name_prefix}-{index}`.
    pub fn new(workers: usize, name_prefix: &str) -> WorkerPool {
        WorkerPool::with_counters(workers, name_prefix, None)
    }

    /// [`new`](Self::new) wired to shared counters: worker liveness
    /// (`workers_alive`) and caught-panic counts (`worker_panics`) land
    /// on the same handle the transport reports connection gauges on.
    pub fn with_counters(
        workers: usize,
        name_prefix: &str,
        counters: Option<ConnectionCounters>,
    ) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                stop: false,
            }),
            available: Condvar::new(),
            counters,
        });
        let threads = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("{name_prefix}-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Enqueues one job; a parked worker wakes to run it.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if state.stop {
            return; // shutting down: the job's completion would be dropped anyway
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.available.notify_one();
    }

    /// Stops accepting jobs, lets the queue drain, and joins every
    /// worker. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.stop = true;
        }
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Decrements `workers_alive` on scope exit — including the (should-be
/// impossible) case of a panic escaping the catch below, so the gauge
/// never overstates live workers.
struct AliveGuard<'a>(Option<&'a ConnectionCounters>);

impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        if let Some(c) = self.0 {
            c.on_worker_down();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let counters = shared.counters.as_ref();
    if let Some(c) = counters {
        c.on_worker_up();
    }
    let _alive = AliveGuard(counters);
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break Some(job);
                }
                if state.stop {
                    break None;
                }
                state = shared
                    .available
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => {
                // Isolate the job: a panicking request answers (or
                // drops) its own completion, the worker keeps draining.
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    if let Some(c) = counters {
                        c.on_worker_panic();
                    }
                }
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_shutdown_drains_the_queue() {
        let ran = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new(2, "test-worker");
        for _ in 0..64 {
            let ran = Arc::clone(&ran);
            pool.execute(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 64, "shutdown dropped jobs");
        // Post-shutdown submits are ignored, not panics.
        pool.execute(|| unreachable!("executed after shutdown"));
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let pool = WorkerPool::new(0, "clamped");
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn panicking_jobs_are_isolated_and_the_pool_keeps_serving() {
        let counters = ConnectionCounters::default();
        let ran = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::with_counters(2, "chaos-worker", Some(counters.clone()));
        // Interleave panicking jobs with real ones: every real job must
        // still run, and no worker thread may die.
        for i in 0..32 {
            if i % 2 == 0 {
                pool.execute(|| panic!("injected job panic"));
            } else {
                let ran = Arc::clone(&ran);
                pool.execute(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        // Queue drained with both workers still alive, then shutdown
        // brings the liveness gauge to zero.
        while counters.snapshot().worker_panics < 16 {
            thread::yield_now();
        }
        assert_eq!(counters.snapshot().workers_alive, 2, "a worker died");
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 16, "a real job was lost");
        let snap = counters.snapshot();
        assert_eq!(snap.worker_panics, 16);
        assert_eq!(snap.workers_alive, 0, "joined workers still counted");
    }
}
