//! The readiness-driven event loop: one thread multiplexing every
//! connection over `poll(2)`, with request execution handed to a
//! [`WorkerPool`](crate::WorkerPool) so a slow request never stalls the
//! loop.
//!
//! # Shape
//!
//! * One reactor thread owns the listener, a self-pipe wakeup token,
//!   and a slab of nonblocking connections.
//! * Each connection carries a [`LineAssembler`](crate::LineAssembler)
//!   (bounded read side) and a write buffer (bounded by backpressure:
//!   while the backlog exceeds `max_write_backlog` the connection is
//!   neither read from nor dispatched).
//! * At most one request per connection is in flight at a time — the
//!   same request/response sequencing the thread-per-connection server
//!   provides. Workers finish a request by queueing a completion and
//!   poking the wakeup pipe; the reactor matches it against the slot's
//!   generation so a completion can never land on a reused slot.
//! * A connection whose write side makes no progress for
//!   `write_stall_timeout` while a backlog is pending is evicted as a
//!   slow consumer. Connections over `max_connections` are answered
//!   with a single overload line at accept and closed.
//! * Shutdown drains: the listener stops accepting, in-flight requests
//!   complete and flush, then surviving connections are evicted with
//!   reason [`EvictReason::Shutdown`]; `drain_timeout` bounds the whole
//!   phase.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use panacea_faultline::Fault;
use sys_poll::{poll_fds, Pipe, PollFd, POLLIN, POLLOUT};

use crate::counters::ConnectionCounters;
use crate::line::{LineAssembler, LineError};
use crate::workers::WorkerPool;

/// Produces responses for the reactor. Implementations must be cheap to
/// share — every worker thread calls [`serve`](Service::serve)
/// concurrently.
pub trait Service: Send + Sync + 'static {
    /// Handles one complete request line (valid UTF-8, newline already
    /// stripped) and returns the response line (newline appended by the
    /// reactor).
    fn serve(&self, line: &str) -> String;

    /// The response line for a malformed frame (too long, invalid
    /// UTF-8). The connection closes after it flushes.
    fn bad_request(&self, detail: &str) -> String;

    /// The response line for a connection rejected at the
    /// `max_connections` bound. The connection closes after it flushes.
    fn overloaded(&self, detail: &str) -> String;

    /// The response line when the handler itself panicked mid-request.
    /// The reactor catches the panic on the worker, answers with this
    /// line, and keeps the connection open — the in-flight request must
    /// always complete or the peer hangs forever. The default reuses
    /// [`bad_request`](Self::bad_request); protocol layers should
    /// override with their internal-error spelling.
    fn internal_error(&self, detail: &str) -> String {
        self.bad_request(detail)
    }
}

/// Why the reactor force-closed a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// The peer stopped draining its responses and the write backlog
    /// stalled past the timeout.
    SlowConsumer,
    /// The connection arrived while `max_connections` were already
    /// open; it got one overload line and the door.
    MaxConnections,
    /// The server is shutting down and the connection outlived the
    /// drain.
    Shutdown,
}

impl EvictReason {
    /// Stable wire/telemetry spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            EvictReason::SlowConsumer => "slow_consumer",
            EvictReason::MaxConnections => "max_connections",
            EvictReason::Shutdown => "shutdown",
        }
    }
}

/// The per-connection lifecycle stages the reactor times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnStage {
    /// Accepting and registering the connection.
    Accept,
    /// Draining readable bytes into the line assembler.
    Read,
    /// Flushing buffered response bytes.
    Write,
    /// Executing one request on a worker.
    Dispatch,
}

impl ConnStage {
    /// Stable telemetry spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ConnStage::Accept => "accept",
            ConnStage::Read => "read",
            ConnStage::Write => "write",
            ConnStage::Dispatch => "dispatch",
        }
    }
}

/// Observes connection lifecycle and stage timings. Every method has a
/// no-op default; implement only what you report. `open_now` is the
/// open-connection gauge after the event.
pub trait ConnObserver: Send + Sync + 'static {
    /// A connection was accepted and registered.
    fn conn_open(&self, open_now: u64) {
        let _ = open_now;
    }

    /// A connection closed normally (peer EOF or orderly completion).
    fn conn_close(&self, open_now: u64) {
        let _ = open_now;
    }

    /// A connection was force-closed.
    fn conn_evict(&self, reason: EvictReason, open_now: u64) {
        let _ = (reason, open_now);
    }

    /// One stage of connection handling took `elapsed`.
    fn stage_time(&self, stage: ConnStage, elapsed: Duration) {
        let _ = (stage, elapsed);
    }
}

/// A [`ConnObserver`] that observes nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl ConnObserver for NullObserver {}

/// Reactor tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ReactorConfig {
    /// Connections beyond this are answered with one overload line and
    /// closed at accept.
    pub max_connections: usize,
    /// Worker threads executing requests (clamped to at least one).
    pub workers: usize,
    /// Per-request-line byte bound (newline excluded).
    pub max_line_bytes: usize,
    /// Write backlog above which a connection stops being read from and
    /// dispatched until the peer drains.
    pub max_write_backlog: usize,
    /// How long a pending write backlog may make zero progress before
    /// the connection is evicted as a slow consumer.
    pub write_stall_timeout: Duration,
    /// Upper bound on the shutdown drain phase.
    pub drain_timeout: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_connections: 1024,
            workers: 4,
            max_line_bytes: crate::line::DEFAULT_MAX_LINE_BYTES,
            max_write_backlog: 4 << 20,
            write_stall_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Cap on complete-but-undispatched lines buffered per connection
/// before the reactor stops reading from it — bounds memory against a
/// pipelining client the same way `max_write_backlog` bounds it against
/// a non-reading one.
const MAX_READY_LINES: usize = 32;

/// Upper bound on bytes pulled per readiness event per connection, so
/// one firehose connection cannot monopolize a loop iteration.
const MAX_READ_PER_EVENT: usize = 256 * 1024;

/// A finished request on its way back to the reactor thread.
struct Completion {
    slot: usize,
    generation: u64,
    response: String,
}

/// State shared between the reactor thread, workers, and the handle.
struct Shared {
    stop: AtomicBool,
    waker: Pipe,
    completions: Mutex<Vec<Completion>>,
}

/// One registered connection.
struct Conn {
    stream: TcpStream,
    generation: u64,
    assembler: LineAssembler,
    /// A request is executing on a worker; no further dispatch until
    /// its completion lands.
    in_flight: bool,
    /// Response bytes not yet accepted by the kernel.
    wbuf: Vec<u8>,
    /// How much of `wbuf` has already been written.
    woff: usize,
    /// Flush what is buffered, then close (bad frame or shutdown drain).
    closing: bool,
    /// The peer half-closed; serve what was read, then close.
    eof: bool,
    /// Last instant the write side accepted bytes while a backlog was
    /// pending; the slow-consumer clock.
    last_write_progress: Instant,
}

impl Conn {
    fn backlog(&self) -> usize {
        self.wbuf.len() - self.woff
    }

    fn wants_read(&self) -> bool {
        !self.eof
            && !self.closing
            && !self.assembler.is_poisoned()
            && self.backlog() == 0
            && self.assembler.ready_lines() < MAX_READY_LINES
    }
}

/// Handle to a running reactor; dropping it shuts the reactor down.
pub struct Reactor {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("local_addr", &self.local_addr)
            .field("running", &self.thread.is_some())
            .finish()
    }
}

impl Reactor {
    /// Takes ownership of `listener` and spawns the event-loop thread.
    ///
    /// # Errors
    ///
    /// Listener/pipe setup failures (fd exhaustion, bad listener).
    pub fn spawn(
        listener: TcpListener,
        service: Arc<dyn Service>,
        observer: Arc<dyn ConnObserver>,
        counters: ConnectionCounters,
        config: ReactorConfig,
    ) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            waker: Pipe::new()?,
            completions: Mutex::new(Vec::new()),
        });
        let loop_shared = Arc::clone(&shared);
        let thread = thread::Builder::new()
            .name("panacea-netcore-reactor".into())
            .spawn(move || {
                let pool = WorkerPool::with_counters(
                    config.workers,
                    "panacea-netcore-worker",
                    Some(counters.clone()),
                );
                EventLoop {
                    listener,
                    service,
                    observer,
                    counters,
                    config,
                    shared: loop_shared,
                    conns: Vec::new(),
                    free: Vec::new(),
                    pool,
                }
                .run();
            })?;
        Ok(Reactor {
            shared,
            local_addr,
            thread: Some(thread),
        })
    }

    /// The bound address of the listener.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains in-flight requests, evicts survivors,
    /// and joins the loop thread. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.waker.notify();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Everything the loop thread owns.
struct EventLoop {
    listener: TcpListener,
    service: Arc<dyn Service>,
    observer: Arc<dyn ConnObserver>,
    counters: ConnectionCounters,
    config: ReactorConfig,
    shared: Arc<Shared>,
    /// Slot-addressed connections; `None` slots are reusable.
    conns: Vec<Option<Conn>>,
    /// Indices of `None` slots.
    free: Vec<usize>,
    pool: WorkerPool,
}

/// What the poll pass reported for one registered connection.
struct Readiness {
    slot: usize,
    readable: bool,
    writable: bool,
    invalid: bool,
}

impl EventLoop {
    fn run(&mut self) {
        let mut generation: u64 = 0;
        let mut drain_deadline: Option<Instant> = None;
        loop {
            let draining = self.shared.stop.load(Ordering::SeqCst);
            if draining && drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + self.config.drain_timeout);
            }

            // Build the descriptor set: waker, listener (while
            // accepting), then every live connection.
            let mut fds = Vec::with_capacity(self.conns.len() + 2);
            fds.push(PollFd::new(self.shared.waker.read_fd(), POLLIN));
            let listener_idx = if draining {
                None
            } else {
                fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
                Some(fds.len() - 1)
            };
            let conn_base = fds.len();
            let mut conn_slots = Vec::with_capacity(self.conns.len());
            for (slot, conn) in self.conns.iter().enumerate() {
                let Some(conn) = conn else { continue };
                let mut events = 0i16;
                if conn.wants_read() {
                    events |= POLLIN;
                }
                if conn.backlog() > 0 {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                conn_slots.push(slot);
            }

            let busy = draining
                || self
                    .conns
                    .iter()
                    .flatten()
                    .any(|c| c.backlog() > 0 || c.assembler.ready_lines() > 0);
            let timeout_ms = if busy { 50 } else { 1000 };
            if let Err(err) = poll_fds(&mut fds, timeout_ms) {
                // ENOMEM-class failure: back off rather than spin.
                let _ = err;
                thread::sleep(Duration::from_millis(10));
            }

            if fds[0].readable() {
                self.shared.waker.drain();
            }
            let accept_ready = listener_idx.map(|i| fds[i].ready()).unwrap_or(false);
            let ready: Vec<Readiness> = conn_slots
                .iter()
                .enumerate()
                .map(|(i, &slot)| {
                    let fd = &fds[conn_base + i];
                    Readiness {
                        slot,
                        readable: fd.readable(),
                        writable: fd.writable(),
                        invalid: fd.invalid(),
                    }
                })
                .collect();
            drop(fds);

            self.apply_completions();
            if accept_ready && !draining {
                self.accept_new(&mut generation);
            }
            for r in ready {
                if r.invalid {
                    self.close_slot(r.slot, None);
                    continue;
                }
                if r.readable {
                    self.handle_readable(r.slot);
                }
                if r.writable {
                    self.handle_writable(r.slot);
                }
            }
            self.sweep(draining);

            if draining {
                let deadline = drain_deadline.expect("deadline set when draining");
                let idle = self
                    .conns
                    .iter()
                    .flatten()
                    .all(|c| !c.in_flight && c.backlog() == 0);
                if idle || Instant::now() >= deadline {
                    break;
                }
            }
        }

        // Drained (or out of patience): evict whatever is left.
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.close_slot(slot, Some(EvictReason::Shutdown));
            }
        }
        self.pool.shutdown();
    }

    /// Moves worker results into their connections' write buffers.
    fn apply_completions(&mut self) {
        let completions = {
            let mut guard = self
                .shared
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *guard)
        };
        for done in completions {
            let Some(conn) = self.conns.get_mut(done.slot).and_then(Option::as_mut) else {
                continue; // connection already gone
            };
            if conn.generation != done.generation {
                continue; // slot was reused; response belongs to a dead peer
            }
            conn.in_flight = false;
            if conn.backlog() == 0 {
                conn.last_write_progress = Instant::now();
            }
            conn.wbuf.extend_from_slice(done.response.as_bytes());
            conn.wbuf.push(b'\n');
            let slot = done.slot;
            self.handle_writable(slot); // opportunistic flush
        }
    }

    fn accept_new(&mut self, generation: &mut u64) {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break, // transient accept failure; retry next wakeup
            };
            // Injected accept failure: the connection is dropped on the
            // floor as if the kernel reset it post-accept. The client
            // sees a closed socket and must reconnect.
            if matches!(
                panacea_faultline::point("netcore.accept"),
                Some(Fault::Reset)
            ) {
                drop(stream);
                continue;
            }
            let accept_started = Instant::now();
            let open = self.conns.iter().flatten().count();
            if open >= self.config.max_connections {
                self.reject_over_limit(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            *generation += 1;
            let conn = Conn {
                stream,
                generation: *generation,
                assembler: LineAssembler::new(self.config.max_line_bytes),
                in_flight: false,
                wbuf: Vec::new(),
                woff: 0,
                closing: false,
                eof: false,
                last_write_progress: Instant::now(),
            };
            let slot = match self.free.pop() {
                Some(slot) => {
                    self.conns[slot] = Some(conn);
                    slot
                }
                None => {
                    self.conns.push(Some(conn));
                    self.conns.len() - 1
                }
            };
            let _ = slot;
            let open_now = self.counters.on_open();
            self.observer.conn_open(open_now);
            self.observer
                .stage_time(ConnStage::Accept, accept_started.elapsed());
        }
    }

    /// Answers an over-limit connection with one overload line and
    /// closes it. Best-effort: the peer may already be gone.
    fn reject_over_limit(&mut self, mut stream: TcpStream) {
        let detail = format!(
            "connection limit {} reached; retry later",
            self.config.max_connections
        );
        let mut line = self.service.overloaded(&detail);
        line.push('\n');
        // Blocking-with-timeout write: the socket is still in its
        // post-accept blocking state, and we refuse to let a dead-slow
        // rejected peer stall the loop longer than this.
        let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
        let _ = stream.write_all(line.as_bytes());
        let open_now = self.counters.on_evict(false);
        self.observer
            .conn_evict(EvictReason::MaxConnections, open_now);
    }

    fn handle_readable(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if !conn.wants_read() {
            return;
        }
        // Injected read fault: `Reset` closes the connection as an io
        // error would; `Delay` stalls the loop thread briefly (a slow
        // NIC / scheduling hiccup).
        if matches!(panacea_faultline::point("netcore.read"), Some(Fault::Reset)) {
            self.close_slot(slot, None);
            return;
        }
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let started = Instant::now();
        let mut buf = [0u8; 16 * 1024];
        let mut pulled = 0usize;
        let mut close_now = false;
        while pulled < MAX_READ_PER_EVENT {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    pulled += n;
                    if let Err(err @ LineError::TooLong { .. }) = conn.assembler.feed(&buf[..n]) {
                        let mut line = self.service.bad_request(&err.to_string());
                        line.push('\n');
                        if conn.backlog() == 0 {
                            conn.last_write_progress = Instant::now();
                        }
                        conn.wbuf.extend_from_slice(line.as_bytes());
                        conn.closing = true;
                        break;
                    }
                    if !conn.wants_read() {
                        break;
                    }
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    close_now = true;
                    break;
                }
            }
        }
        self.observer.stage_time(ConnStage::Read, started.elapsed());
        if close_now {
            self.close_slot(slot, None);
        }
    }

    fn handle_writable(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.backlog() == 0 {
            return;
        }
        let started = Instant::now();
        let mut close_now = false;
        // Injected write faults: `ShortWrite` pushes exactly one byte
        // this pass (the backlog stays pending and POLLOUT resumes it —
        // exercising partial-write reassembly on the peer), `Reset`
        // drops the connection as a broken pipe would.
        let mut short_write = false;
        match panacea_faultline::point("netcore.write") {
            Some(Fault::Reset) => close_now = true,
            Some(Fault::ShortWrite) => short_write = true,
            _ => {}
        }
        while !close_now {
            let pending = &conn.wbuf[conn.woff..];
            if pending.is_empty() {
                break;
            }
            let pending = if short_write { &pending[..1] } else { pending };
            match conn.stream.write(pending) {
                Ok(0) => {
                    close_now = true;
                    break;
                }
                Ok(n) => {
                    conn.woff += n;
                    conn.last_write_progress = Instant::now();
                    if short_write {
                        break;
                    }
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    close_now = true;
                    break;
                }
            }
        }
        if conn.woff == conn.wbuf.len() {
            conn.wbuf.clear();
            conn.woff = 0;
        } else if conn.woff > 64 * 1024 {
            // Compact so a long-lived backlog does not pin dead bytes.
            conn.wbuf.drain(..conn.woff);
            conn.woff = 0;
        }
        self.observer
            .stage_time(ConnStage::Write, started.elapsed());
        if close_now {
            self.close_slot(slot, None);
        }
    }

    /// Per-iteration connection upkeep: dispatch ready requests, evict
    /// stalled writers, and retire finished connections.
    fn sweep(&mut self, draining: bool) {
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            // Dispatch at most one request per connection.
            let dispatch = {
                let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                    continue;
                };
                if conn.backlog() > 0
                    && now >= conn.last_write_progress + self.config.write_stall_timeout
                {
                    self.close_slot(slot, Some(EvictReason::SlowConsumer));
                    continue;
                }
                let mut job = None;
                if !draining
                    && !conn.in_flight
                    && !conn.closing
                    && conn.backlog() <= self.config.max_write_backlog
                {
                    while let Some(raw) = conn.assembler.pop_line() {
                        match String::from_utf8(raw) {
                            Ok(line) => {
                                if line.trim().is_empty() {
                                    continue; // blank keep-alive lines are ignored
                                }
                                conn.in_flight = true;
                                job = Some((conn.generation, line));
                                break;
                            }
                            Err(_) => {
                                let mut resp =
                                    self.service.bad_request("request line is not valid UTF-8");
                                resp.push('\n');
                                if conn.backlog() == 0 {
                                    conn.last_write_progress = Instant::now();
                                }
                                conn.wbuf.extend_from_slice(resp.as_bytes());
                                conn.closing = true;
                                break;
                            }
                        }
                    }
                }
                job
            };
            if let Some((generation, line)) = dispatch {
                let service = Arc::clone(&self.service);
                let observer = Arc::clone(&self.observer);
                let shared = Arc::clone(&self.shared);
                let counters = self.counters.clone();
                self.pool.execute(move || {
                    let started = Instant::now();
                    // A panicking handler must still complete the
                    // request: the connection's `in_flight` flag only
                    // clears when a completion lands, so losing it
                    // would wedge the peer forever. Catch here (not
                    // just at the pool) and answer the internal-error
                    // line instead.
                    let response = catch_unwind(AssertUnwindSafe(|| {
                        panacea_faultline::point("netcore.dispatch");
                        service.serve(&line)
                    }))
                    .unwrap_or_else(|_| {
                        counters.on_worker_panic();
                        service.internal_error("request handler panicked")
                    });
                    observer.stage_time(ConnStage::Dispatch, started.elapsed());
                    shared
                        .completions
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(Completion {
                            slot,
                            generation,
                            response,
                        });
                    shared.waker.notify();
                });
            }

            // Retire: flushed and told to close, or peer gone with
            // nothing left to serve.
            let done = {
                let Some(conn) = self.conns.get(slot).and_then(Option::as_ref) else {
                    continue;
                };
                let flushed = conn.backlog() == 0 && !conn.in_flight;
                (conn.closing && flushed)
                    || (conn.eof && flushed && conn.assembler.ready_lines() == 0)
            };
            if done {
                self.close_slot(slot, None);
            }
        }
    }

    /// Removes a connection. `evict` names a forced close; `None` is a
    /// normal close (peer EOF / orderly completion / io error).
    fn close_slot(&mut self, slot: usize, evict: Option<EvictReason>) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        drop(conn);
        self.free.push(slot);
        match evict {
            Some(reason) => {
                let open_now = self.counters.on_evict(true);
                self.observer.conn_evict(reason, open_now);
            }
            None => {
                let open_now = self.counters.on_close();
                self.observer.conn_close(open_now);
            }
        }
    }
}
