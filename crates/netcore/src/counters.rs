//! Shared connection gauges: how many connections are open, the
//! high-water mark, and how many were forcibly evicted.
//!
//! One [`ConnectionCounters`] handle is shared between the transport
//! (which updates it on accept/close/evict, whichever io model is
//! running) and whoever reports stats (the gateway's `stats` verb).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Inner {
    open: AtomicU64,
    peak: AtomicU64,
    evicted: AtomicU64,
    workers_alive: AtomicU64,
    worker_panics: AtomicU64,
}

/// Cheaply cloneable shared connection gauges; clones observe the same
/// counters.
#[derive(Debug, Clone, Default)]
pub struct ConnectionCounters {
    inner: Arc<Inner>,
}

/// A point-in-time snapshot of the connection gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectionStats {
    /// Connections currently open.
    pub open: u64,
    /// The most connections ever simultaneously open.
    pub peak: u64,
    /// Connections the server force-closed (slow consumer, connection
    /// limit, shutdown) rather than the peer closing.
    pub evicted: u64,
    /// Request-pool worker threads currently alive — the liveness gauge
    /// a chaos harness watches to prove panics did not thin the pool.
    pub workers_alive: u64,
    /// Panics caught inside pool jobs; each one was isolated and the
    /// worker thread kept serving.
    pub worker_panics: u64,
}

impl ConnectionCounters {
    /// Records a connection opening; returns the new open count.
    pub fn on_open(&self) -> u64 {
        let open = self.inner.open.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.peak.fetch_max(open, Ordering::Relaxed);
        open
    }

    /// Records a peer-initiated close; returns the new open count.
    pub fn on_close(&self) -> u64 {
        dec_saturating(&self.inner.open)
    }

    /// Records a forced close. `was_open` distinguishes evicting a live
    /// connection (slow consumer, shutdown — decrements the gauge) from
    /// rejecting one at accept (connection limit — never counted open).
    /// Returns the new open count.
    pub fn on_evict(&self, was_open: bool) -> u64 {
        self.inner.evicted.fetch_add(1, Ordering::Relaxed);
        if was_open {
            dec_saturating(&self.inner.open)
        } else {
            self.inner.open.load(Ordering::Relaxed)
        }
    }

    /// Records a pool worker thread starting.
    pub fn on_worker_up(&self) {
        self.inner.workers_alive.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a pool worker thread exiting (clean shutdown or an
    /// escaped panic — either way it no longer serves).
    pub fn on_worker_down(&self) {
        dec_saturating(&self.inner.workers_alive);
    }

    /// Records a panic caught (and survived) inside a pool job.
    pub fn on_worker_panic(&self) {
        self.inner.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// The current gauge values.
    pub fn snapshot(&self) -> ConnectionStats {
        ConnectionStats {
            open: self.inner.open.load(Ordering::Relaxed),
            peak: self.inner.peak.load(Ordering::Relaxed),
            evicted: self.inner.evicted.load(Ordering::Relaxed),
            workers_alive: self.inner.workers_alive.load(Ordering::Relaxed),
            worker_panics: self.inner.worker_panics.load(Ordering::Relaxed),
        }
    }
}

/// Decrements without wrapping below zero (a close racing a snapshot
/// must never read as 2^64 open connections).
fn dec_saturating(gauge: &AtomicU64) -> u64 {
    let mut current = gauge.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_sub(1);
        match gauge.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return next,
            Err(seen) => current = seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_track_open_peak_and_evictions() {
        let c = ConnectionCounters::default();
        assert_eq!(c.on_open(), 1);
        assert_eq!(c.on_open(), 2);
        assert_eq!(c.on_close(), 1);
        assert_eq!(c.on_evict(true), 0);
        let rejected_at = c.on_evict(false); // limit rejection: gauge untouched
        assert_eq!(rejected_at, 0);
        c.on_worker_up();
        c.on_worker_up();
        c.on_worker_panic();
        c.on_worker_down();
        let snap = c.snapshot();
        assert_eq!(
            snap,
            ConnectionStats {
                open: 0,
                peak: 2,
                evicted: 2,
                workers_alive: 1,
                worker_panics: 1,
            }
        );
        // Saturation: a stray extra close cannot wrap the gauge.
        assert_eq!(c.on_close(), 0);
        assert_eq!(c.snapshot().open, 0);
    }
}
