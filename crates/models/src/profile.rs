//! Per-layer sparsity profiling — the bridge between the model zoo and
//! the accelerator simulator.
//!
//! For each [`LayerSpec`] we sample a representative weight tile and
//! activation tile from the layer's distributions, run the PTQ calibration
//! (optionally with ZPM and DBS), bit-slice both operands, and measure the
//! HO *vector* sparsities `ρ_w` and `ρ_x` plus quality SQNRs. The
//! simulator then scales the measured tile statistics to the full layer —
//! the same methodology the paper uses ("we count the number of cycles and
//! the number of activated modules during inference … considering
//! bit-slice sparsity in real benchmarks").

use panacea_bitslice::{sparsity, SlicedActivation, SlicedWeight};
use panacea_quant::dbs::DbsConfig;
use panacea_quant::{
    ActivationCalibrator, DbsType, LayerQuantConfig, Quantizer, SymmetricQuantizer,
};
use serde::{Deserialize, Serialize};

use crate::proxy::{self, ActScheme};
use crate::zoo::{LayerSpec, ModelSpec};

/// Profiling options (which of the paper's optimizations are active).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileOptions {
    /// Enable zero-point manipulation.
    pub zpm: bool,
    /// Enable distribution-based slicing.
    pub dbs: Option<DbsConfig>,
    /// Tile cap along M (multiple of 4).
    pub sample_m: usize,
    /// Tile cap along K.
    pub sample_k: usize,
    /// Tile cap along N (multiple of 4).
    pub sample_n: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            zpm: true,
            dbs: Some(DbsConfig::default()),
            sample_m: 128,
            sample_k: 192,
            sample_n: 128,
            seed: 0xBEEF,
        }
    }
}

impl ProfileOptions {
    /// The paper's baseline configuration: no ZPM, no DBS.
    pub fn baseline() -> Self {
        ProfileOptions {
            zpm: false,
            dbs: None,
            ..ProfileOptions::default()
        }
    }
}

/// Measured per-layer statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerProfile {
    /// The layer this profile describes.
    pub spec: LayerSpec,
    /// Weight HO vector sparsity (SBR all-zero 4×1 vectors).
    pub rho_w: f64,
    /// Activation HO vector sparsity under AQS-GEMM (all-`r` 1×4 vectors).
    pub rho_x: f64,
    /// Activation HO vector sparsity counting only all-*zero* vectors —
    /// what a zero-skip-only engine (Sibia semantics, Fig. 18(b)) sees on
    /// the same asymmetric data.
    pub rho_x_zero_only: f64,
    /// Activation HO vector sparsity Sibia achieves with its own
    /// *symmetric* 7-bit activations.
    pub rho_x_sibia: f64,
    /// Selected DBS type.
    pub dbs_type: DbsType,
    /// Slice-level skip-range coverage from calibration.
    pub coverage: f64,
    /// Final activation quantization configuration.
    pub quant: LayerQuantConfig,
    /// Layer-output SQNR with plain asymmetric activations (no DBS
    /// truncation) — the algorithm-level comparison of Fig. 5(b).
    pub sqnr_asym_db: f64,
    /// Layer-output SQNR including the DBS type-2/3 LSB truncation —
    /// the small extra cost the paper quotes as ≈ 0.6 %p on DeiT-base.
    pub sqnr_dbs_db: f64,
    /// Layer-output SQNR with symmetric activations at the same width.
    pub sqnr_sym_db: f64,
}

/// Profiles one layer by tile sampling.
///
/// # Panics
///
/// Panics if the options' tile caps are not multiples of 4.
pub fn profile_layer(spec: &LayerSpec, opts: &ProfileOptions) -> LayerProfile {
    assert_eq!(opts.sample_m % 4, 0, "sample_m must be a multiple of 4");
    assert_eq!(opts.sample_n % 4, 0, "sample_n must be a multiple of 4");
    let m = spec.m.min(opts.sample_m);
    let k = spec.k.min(opts.sample_k);
    let n = spec.n.min(opts.sample_n);
    let mut rng = panacea_tensor::seeded_rng(opts.seed ^ hash_name(&spec.name));

    // --- Weights: sample, symmetric-quantize, SBR-slice, measure ρw.
    let w_f = spec.weight_dist.sample_matrix(m, k, &mut rng);
    let wq = SymmetricQuantizer::calibrate(w_f.as_slice(), spec.weight_bits);
    let w_int = wq.quantize_matrix(&w_f);
    let n_lo = usize::from((spec.weight_bits - 4) / 3);
    let sw = SlicedWeight::from_int(&w_int, n_lo).expect("weight fits declared width");
    let rho_w = sparsity::weight_vector_sparsity(sw.ho());

    // --- Activations: calibration batch + evaluation tile.
    let act_bits = 4 * (spec.act_lo_slices as u8 + 1);
    let cal_batch = spec.act_dist.sample_matrix(k, n, &mut rng);
    let mut cal = ActivationCalibrator::new(act_bits).with_zpm(opts.zpm);
    if let Some(cfg) = opts.dbs {
        // DBS is defined for 8-bit activations only.
        if spec.act_lo_slices == 1 {
            cal = cal.with_dbs(cfg);
        }
    }
    cal.observe(&cal_batch);
    let quant = cal.finalize();
    let x_f = spec.act_dist.sample_matrix(k, n, &mut rng);
    let x_q = quant.quantizer.quantize_matrix(&x_f);
    let sx = SlicedActivation::from_uint(&x_q, spec.act_lo_slices, quant.dbs_type)
        .expect("quantized activations fit declared width");
    let r = quant.frequent_ho_slice;
    let rho_x = sparsity::act_vector_sparsity(sx.ho(), r);
    let rho_x_zero_only = sparsity::act_vector_sparsity(sx.ho(), 0);

    // --- Sibia reference: symmetric 7-bit activations, SBR slicing.
    // Sibia's symmetric activations use the (3k+4)-bit format with the
    // same slice count as the asymmetric path: 7-bit for k = 1.
    let sym_bits = 3 * spec.act_lo_slices as u8 + 4;
    let xq_sym = SymmetricQuantizer::calibrate(x_f.as_slice(), sym_bits);
    let x_sym = xq_sym.quantize_matrix(&x_f);
    let sx_sym = SlicedWeight::from_int(&x_sym, usize::from((sym_bits - 4) / 3))
        .expect("symmetric activations fit");
    let rho_x_sibia = sparsity::weight_vector_sparsity(&sx_sym.ho().transposed());

    // --- Quality proxies.
    let sqnr_asym_db = proxy::layer_output_sqnr(
        &w_f,
        &x_f,
        ActScheme::Asymmetric,
        spec.weight_bits,
        act_bits,
    );
    let sqnr_dbs_db = if quant.dbs_type == DbsType::Type1 {
        sqnr_asym_db
    } else {
        proxy::layer_output_sqnr(
            &w_f,
            &x_f,
            ActScheme::AsymmetricDbs(quant.dbs_type),
            spec.weight_bits,
            act_bits,
        )
    };
    // Sibia's symmetric activations live in the (3k+4)-bit format — 7-bit
    // for the standard 8-bit-equivalent configuration.
    let sqnr_sym_db =
        proxy::layer_output_sqnr(&w_f, &x_f, ActScheme::Symmetric, spec.weight_bits, sym_bits);

    LayerProfile {
        spec: spec.clone(),
        rho_w,
        rho_x,
        rho_x_zero_only,
        rho_x_sibia,
        dbs_type: quant.dbs_type,
        coverage: quant.coverage,
        quant,
        sqnr_asym_db,
        sqnr_dbs_db,
        sqnr_sym_db,
    }
}

/// Profiles every layer of a model.
pub fn profile_model(model: &ModelSpec, opts: &ProfileOptions) -> Vec<LayerProfile> {
    model
        .layers
        .iter()
        .map(|l| profile_layer(l, opts))
        .collect()
}

/// Cheap deterministic string hash (FNV-1a) to derive per-layer seeds.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{Benchmark, LayerKind};

    fn quick_opts() -> ProfileOptions {
        ProfileOptions {
            sample_m: 64,
            sample_k: 96,
            sample_n: 64,
            ..ProfileOptions::default()
        }
    }

    #[test]
    fn profiles_are_deterministic() {
        let spec = &Benchmark::DeitBase.spec().layers[0];
        let a = profile_layer(spec, &quick_opts());
        let b = profile_layer(spec, &quick_opts());
        assert_eq!(a.rho_x, b.rho_x);
        assert_eq!(a.rho_w, b.rho_w);
    }

    #[test]
    fn sparsities_are_probabilities() {
        for p in profile_model(&Benchmark::DeitBase.spec(), &quick_opts()) {
            for v in [
                p.rho_w,
                p.rho_x,
                p.rho_x_zero_only,
                p.rho_x_sibia,
                p.coverage,
            ] {
                assert!((0.0..=1.0).contains(&v), "{} -> {v}", p.spec.name);
            }
        }
    }

    #[test]
    fn aqs_beats_zero_skip_only_on_asymmetric_layers() {
        // On asymmetric (non-near-zero-centred) quantized data, counting
        // all-r vectors must find at least as much sparsity as counting
        // all-zero vectors — usually far more (Fig. 18(b) / Fig. 14(a)).
        let spec = &Benchmark::DeitBase.spec().layers[0]; // qkv, post-LN
        let p = profile_layer(spec, &quick_opts());
        assert!(
            p.rho_x >= p.rho_x_zero_only,
            "rho_x={} < zero-only={}",
            p.rho_x,
            p.rho_x_zero_only
        );
        assert!(
            p.rho_x > 0.2,
            "expected nontrivial AQS sparsity, got {}",
            p.rho_x
        );
    }

    #[test]
    fn zpm_and_dbs_do_not_reduce_sparsity() {
        let spec = &Benchmark::Opt2_7b.spec().layers[0];
        let base = profile_layer(
            spec,
            &ProfileOptions {
                zpm: false,
                dbs: None,
                ..quick_opts()
            },
        );
        let opt = profile_layer(spec, &quick_opts());
        assert!(
            opt.rho_x + 1e-9 >= base.rho_x,
            "optimized {} < baseline {}",
            opt.rho_x,
            base.rho_x
        );
    }

    #[test]
    fn asym_quality_beats_sym_on_transformer_layers() {
        let model = Benchmark::BertBase.spec();
        let profiles = profile_model(&model, &quick_opts());
        // On aggregate, asymmetric activations preserve more signal.
        let asym: f64 = profiles.iter().map(|p| p.sqnr_asym_db).sum();
        let sym: f64 = profiles.iter().map(|p| p.sqnr_sym_db).sum();
        assert!(asym > sym, "asym {asym} should beat sym {sym}");
    }

    #[test]
    fn gelu_layers_have_high_zero_sparsity_even_without_r() {
        // The paper's Fig. 14(a) note: MLP.FC2 inputs (post-GELU) give the
        // legacy zero-skip engines their only sparse layer.
        let model = Benchmark::DeitBase.spec();
        let fc2 = model
            .layers
            .iter()
            .find(|l| l.kind == LayerKind::MlpFc2)
            .unwrap();
        let p = profile_layer(
            fc2,
            &ProfileOptions {
                zpm: false,
                dbs: None,
                ..quick_opts()
            },
        );
        assert!(
            p.rho_x_zero_only > 0.05,
            "post-GELU should produce some all-zero vectors, got {}",
            p.rho_x_zero_only
        );
    }

    #[test]
    fn mixed_precision_layers_profile_without_dbs() {
        let model = Benchmark::Llama1b.spec();
        let down = model
            .layers
            .iter()
            .find(|l| l.kind == LayerKind::DownProj)
            .unwrap();
        let p = profile_layer(down, &quick_opts());
        assert_eq!(p.dbs_type, DbsType::Type1, "12-bit inputs must stay type-1");
    }
}
