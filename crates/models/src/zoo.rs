//! Layer-shape inventories of the paper's benchmark models.
//!
//! Dimensions come from the published architecture configurations. Every
//! GEMM is described as `M × K × N` where the weight is `M × K` and the
//! activation is `K × N` (`N` = tokens, or spatial positions for
//! convolutions lowered with im2col). Dimensions are rounded to multiples
//! of 4 where the original is not (e.g. 197 ViT tokens → 196, ResNet
//! conv1's K = 147 → 148); the rounding changes workloads by < 1%.

use panacea_tensor::dist::DistributionKind;
use serde::{Deserialize, Serialize};

/// The role of a layer; used to assign realistic activation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// QKV projection (input is post-LayerNorm).
    Qkv,
    /// Attention output projection (input is attention context).
    AttnProj,
    /// First MLP projection (input is post-LayerNorm).
    MlpFc1,
    /// Second MLP projection (input is post-GELU — near-zero heavy).
    MlpFc2,
    /// LLM gate/up projection (SwiGLU).
    GateUp,
    /// LLM down projection (sensitivity-critical in Llama).
    DownProj,
    /// Convolution lowered to GEMM via im2col (input is post-ReLU).
    Conv,
    /// Classifier / LM head.
    Head,
}

/// One GEMM-shaped layer of a benchmark model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Human-readable name, e.g. `"block3.mlp.fc2"`.
    pub name: String,
    /// Layer role.
    pub kind: LayerKind,
    /// Weight rows (output features).
    pub m: usize,
    /// Weight columns / activation rows (input features).
    pub k: usize,
    /// Activation columns (tokens / positions).
    pub n: usize,
    /// How many identical instances of this GEMM the model executes
    /// (e.g. one per transformer block).
    pub count: usize,
    /// Input-activation distribution for this layer.
    pub act_dist: DistributionKind,
    /// Weight distribution (trained weights are near-zero with
    /// layer-dependent outlier structure).
    pub weight_dist: DistributionKind,
    /// Weight bit-width: 7 by default, 10 for the paper's GPT-2 MLP
    /// mixed precision, 4 for the OPTQ low-bit experiments.
    pub weight_bits: u8,
    /// Number of LO activation slices (`k` in the `(4k+4)`-bit format);
    /// 1 for 8-bit, 2 for the Llama down-projection 12-bit inputs.
    pub act_lo_slices: usize,
}

impl LayerSpec {
    /// Multiply-accumulate count of one instance (`M·K·N`).
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }

    /// Total MACs across all instances.
    pub fn total_macs(&self) -> u64 {
        self.macs() * self.count as u64
    }
}

/// A named collection of layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name as reported in the paper.
    pub name: String,
    /// Layers, in execution order (deduplicated by `count`).
    pub layers: Vec<LayerSpec>,
    /// Baseline FP16 quality metric: top-1 accuracy (%) for classifiers,
    /// perplexity for language models.
    pub fp16_quality: f64,
    /// `true` if quality is perplexity (lower is better).
    pub quality_is_ppl: bool,
}

impl ModelSpec {
    /// Total MACs over all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerSpec::total_macs).sum()
    }

    /// Total weight parameters across all layers.
    pub fn total_weights(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| (l.m * l.k * l.count) as u64)
            .sum()
    }
}

/// The paper's benchmark set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// DeiT-base on ImageNet-1k (Fig. 14–16).
    DeitBase,
    /// BERT-base on GLUE (Fig. 5, 14–16).
    BertBase,
    /// GPT-2 (117M) on WikiText-2, 10-bit MLP weights (Fig. 14–16).
    Gpt2,
    /// OPT-350M on WikiText-2 (Fig. 17).
    Opt350m,
    /// OPT-1.3B on WikiText-2 (Fig. 17).
    Opt1_3b,
    /// OPT-2.7B on WikiText-2 (Figs. 17–19).
    Opt2_7b,
    /// Llama-3.2-1B, OPTQ weights, 12-bit down-projection inputs (Fig. 17).
    Llama1b,
    /// Llama-3.2-3B (Fig. 17).
    Llama3b,
    /// ResNet-18 on ImageNet-1k (Fig. 16).
    Resnet18,
}

impl Benchmark {
    /// All benchmarks, in the paper's presentation order.
    pub fn all() -> [Benchmark; 9] {
        [
            Benchmark::DeitBase,
            Benchmark::BertBase,
            Benchmark::Gpt2,
            Benchmark::Opt350m,
            Benchmark::Opt1_3b,
            Benchmark::Opt2_7b,
            Benchmark::Llama1b,
            Benchmark::Llama3b,
            Benchmark::Resnet18,
        ]
    }

    /// Builds the layer inventory.
    pub fn spec(self) -> ModelSpec {
        match self {
            Benchmark::DeitBase => {
                transformer_encoder("DeiT-base", 12, 768, 3072, 196, 81.8, false, 7)
            }
            Benchmark::BertBase => {
                transformer_encoder("BERT-base", 12, 768, 3072, 128, 84.6, false, 7)
            }
            Benchmark::Gpt2 => {
                let mut m = transformer_encoder("GPT-2", 12, 768, 3072, 1024, 29.4, true, 7);
                // Paper footnote 1: 10-bit symmetric weights (3 SBR slices)
                // in the GPT-2 MLP layers to avoid accuracy loss.
                for l in &mut m.layers {
                    if matches!(l.kind, LayerKind::MlpFc1 | LayerKind::MlpFc2) {
                        l.weight_bits = 10;
                    }
                }
                m
            }
            Benchmark::Opt350m => opt_decoder("OPT-350M", 24, 1024, 4096, 2048, 22.0),
            Benchmark::Opt1_3b => opt_decoder("OPT-1.3B", 24, 2048, 8192, 2048, 14.6),
            Benchmark::Opt2_7b => opt_decoder("OPT-2.7B", 32, 2560, 10240, 2048, 12.5),
            Benchmark::Llama1b => llama_decoder("Llama-3.2-1B", 16, 2048, 8192, 512, 2048, 9.8),
            Benchmark::Llama3b => llama_decoder("Llama-3.2-3B", 28, 3072, 8192, 1024, 2048, 7.8),
            Benchmark::Resnet18 => resnet18(),
        }
    }
}

/// Post-LayerNorm activations: tight core, asymmetric outlier channels
/// (the documented transformer-activation structure).
fn ln_dist() -> DistributionKind {
    DistributionKind::TransformerAct {
        core_mean: 0.1,
        core_std: 0.5,
        pos_scale: 10.0,
        neg_scale: 6.0,
        outlier_frac: 0.01,
    }
}

/// Post-GELU activations: one-sided, near-zero heavy, with outlier
/// channels stretching the positive range.
fn gelu_dist() -> DistributionKind {
    DistributionKind::PostGeluOutlier {
        scale: 1.0,
        outlier_scale: 8.0,
        outlier_frac: 0.02,
    }
}

/// Attention-context activations: near-zero core, milder outliers.
fn ctx_dist() -> DistributionKind {
    DistributionKind::TransformerAct {
        core_mean: 0.1,
        core_std: 0.3,
        pos_scale: 8.0,
        neg_scale: 7.0,
        outlier_frac: 0.01,
    }
}

/// LLM activations with extreme per-channel outliers (OPT/Llama regime).
fn outlier_dist(scale: f32) -> DistributionKind {
    DistributionKind::TransformerAct {
        core_mean: 0.08,
        core_std: 0.25,
        pos_scale: scale,
        neg_scale: scale * 0.6,
        outlier_frac: 0.02,
    }
}

/// Trained-weight distribution: near-zero Gaussian core with rare large
/// values; `outlier_scale` tunes the resulting SBR HO sparsity.
fn weight_dist(outlier_scale: f32) -> DistributionKind {
    DistributionKind::OutlierChannels {
        core_std: 0.02,
        outlier_scale,
        outlier_frac: 0.01,
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the paper table columns
fn layer(
    name: String,
    kind: LayerKind,
    m: usize,
    k: usize,
    n: usize,
    count: usize,
    act_dist: DistributionKind,
    w_outlier: f32,
) -> LayerSpec {
    LayerSpec {
        name,
        kind,
        m,
        k,
        n,
        count,
        act_dist,
        weight_dist: weight_dist(w_outlier),
        weight_bits: 7,
        act_lo_slices: 1,
    }
}

/// Standard pre-norm transformer encoder (DeiT/BERT/GPT-2 share the
/// four weight GEMMs per block; attention score/context products are
/// activation-activation and excluded, matching the paper's layer lists).
#[allow(clippy::too_many_arguments)] // mirrors the paper table columns
fn transformer_encoder(
    name: &str,
    blocks: usize,
    d: usize,
    d_ff: usize,
    tokens: usize,
    quality: f64,
    is_ppl: bool,
    _wbits: u8,
) -> ModelSpec {
    let layers = vec![
        layer(
            format!("{name}.qkv"),
            LayerKind::Qkv,
            3 * d,
            d,
            tokens,
            blocks,
            ln_dist(),
            5.0,
        ),
        layer(
            format!("{name}.attn_proj"),
            LayerKind::AttnProj,
            d,
            d,
            tokens,
            blocks,
            ctx_dist(),
            4.0,
        ),
        layer(
            format!("{name}.mlp.fc1"),
            LayerKind::MlpFc1,
            d_ff,
            d,
            tokens,
            blocks,
            ln_dist(),
            4.5,
        ),
        layer(
            format!("{name}.mlp.fc2"),
            LayerKind::MlpFc2,
            d,
            d_ff,
            tokens,
            blocks,
            gelu_dist(),
            4.0,
        ),
    ];
    ModelSpec {
        name: name.to_string(),
        layers,
        fp16_quality: quality,
        quality_is_ppl: is_ppl,
    }
}

/// OPT decoder blocks: like the encoder but with outlier-channel
/// activations (the well-documented OPT outlier phenomenon).
fn opt_decoder(
    name: &str,
    blocks: usize,
    d: usize,
    d_ff: usize,
    tokens: usize,
    ppl: f64,
) -> ModelSpec {
    let layers = vec![
        layer(
            format!("{name}.qkv"),
            LayerKind::Qkv,
            3 * d,
            d,
            tokens,
            blocks,
            outlier_dist(16.0),
            5.0,
        ),
        layer(
            format!("{name}.attn_proj"),
            LayerKind::AttnProj,
            d,
            d,
            tokens,
            blocks,
            ctx_dist(),
            4.0,
        ),
        layer(
            format!("{name}.mlp.fc1"),
            LayerKind::MlpFc1,
            d_ff,
            d,
            tokens,
            blocks,
            outlier_dist(20.0),
            4.5,
        ),
        layer(
            format!("{name}.mlp.fc2"),
            LayerKind::MlpFc2,
            d,
            d_ff,
            tokens,
            blocks,
            gelu_dist(),
            4.0,
        ),
    ];
    ModelSpec {
        name: name.to_string(),
        layers,
        fp16_quality: ppl,
        quality_is_ppl: true,
    }
}

/// Llama-3.2 decoder: GQA attention (smaller KV projections), SwiGLU MLP,
/// OPTQ 4-bit-friendly weights, and 12-bit inputs (2 LO slices) for the
/// sensitivity-critical down-projection.
fn llama_decoder(
    name: &str,
    blocks: usize,
    d: usize,
    d_ff: usize,
    kv_dim: usize,
    tokens: usize,
    ppl: f64,
) -> ModelSpec {
    let mut down = layer(
        format!("{name}.mlp.down"),
        LayerKind::DownProj,
        d,
        d_ff,
        tokens,
        blocks,
        outlier_dist(24.0),
        5.5,
    );
    down.act_lo_slices = 2; // three 4-bit slices, paper Fig. 17 discussion
    let layers = vec![
        layer(
            format!("{name}.attn.q"),
            LayerKind::Qkv,
            d,
            d,
            tokens,
            blocks,
            outlier_dist(16.0),
            5.0,
        ),
        layer(
            format!("{name}.attn.kv"),
            LayerKind::Qkv,
            2 * kv_dim,
            d,
            tokens,
            blocks,
            outlier_dist(16.0),
            5.0,
        ),
        layer(
            format!("{name}.attn.o"),
            LayerKind::AttnProj,
            d,
            d,
            tokens,
            blocks,
            ctx_dist(),
            4.0,
        ),
        layer(
            format!("{name}.mlp.gate_up"),
            LayerKind::GateUp,
            2 * d_ff,
            d,
            tokens,
            blocks,
            outlier_dist(20.0),
            4.5,
        ),
        down,
    ];
    ModelSpec {
        name: name.to_string(),
        layers,
        fp16_quality: ppl,
        quality_is_ppl: true,
    }
}

/// Post-ReLU convolution inputs: one-sided with outlier feature maps.
fn relu_dist() -> DistributionKind {
    DistributionKind::PostGeluOutlier {
        scale: 0.8,
        outlier_scale: 6.0,
        outlier_frac: 0.03,
    }
}

/// ResNet-18 with convolutions lowered to GEMM (im2col):
/// `M = C_out`, `K = C_in·k²` (rounded up to ×4), `N = H_out·W_out`.
fn resnet18() -> ModelSpec {
    let conv = |name: &str, c_out: usize, k: usize, n: usize, count: usize| {
        layer(
            name.to_string(),
            LayerKind::Conv,
            c_out,
            k.div_ceil(4) * 4,
            n.div_ceil(4) * 4,
            count,
            relu_dist(),
            4.5,
        )
    };
    let layers = vec![
        conv("conv1", 64, 3 * 49, 112 * 112, 1),
        conv("stage1.conv", 64, 64 * 9, 56 * 56, 4),
        conv("stage2.conv0", 128, 64 * 9, 28 * 28, 1),
        conv("stage2.conv", 128, 128 * 9, 28 * 28, 3),
        conv("stage2.down", 128, 64, 28 * 28, 1),
        conv("stage3.conv0", 256, 128 * 9, 14 * 14, 1),
        conv("stage3.conv", 256, 256 * 9, 14 * 14, 3),
        conv("stage3.down", 256, 128, 14 * 14, 1),
        conv("stage4.conv0", 512, 256 * 9, 7 * 7, 1),
        conv("stage4.conv", 512, 512 * 9, 7 * 7, 3),
        conv("stage4.down", 512, 256, 7 * 7, 1),
        layer(
            "fc".to_string(),
            LayerKind::Head,
            1000,
            512,
            4,
            1,
            relu_dist(),
            4.5,
        ),
    ];
    ModelSpec {
        name: "ResNet-18".to_string(),
        layers,
        fp16_quality: 69.8,
        quality_is_ppl: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build() {
        for b in Benchmark::all() {
            let spec = b.spec();
            assert!(!spec.layers.is_empty(), "{:?}", b);
            assert!(spec.total_macs() > 0);
        }
    }

    #[test]
    fn dimensions_are_vector_aligned() {
        for b in Benchmark::all() {
            for l in b.spec().layers {
                assert_eq!(l.m % 4, 0, "{} M={}", l.name, l.m);
                assert_eq!(l.n % 4, 0, "{} N={}", l.name, l.n);
            }
        }
    }

    #[test]
    fn parameter_counts_are_plausible() {
        // Weight GEMM parameters of the 4 projections ≈ 12·d² per block
        // ≈ 85M for a 768/12-block encoder (total model is larger due to
        // embeddings, which the accelerator does not execute).
        let deit = Benchmark::DeitBase.spec();
        let params = deit.total_weights();
        assert!((80_000_000..100_000_000).contains(&params), "{params}");
        // OPT-2.7B weight GEMMs ≈ 2.5B.
        let opt = Benchmark::Opt2_7b.spec();
        assert!((2_000_000_000..3_000_000_000).contains(&opt.total_weights()));
    }

    #[test]
    fn gpt2_mlp_uses_10bit_weights() {
        let gpt2 = Benchmark::Gpt2.spec();
        for l in &gpt2.layers {
            if matches!(l.kind, LayerKind::MlpFc1 | LayerKind::MlpFc2) {
                assert_eq!(l.weight_bits, 10, "{}", l.name);
            } else {
                assert_eq!(l.weight_bits, 7, "{}", l.name);
            }
        }
    }

    #[test]
    fn llama_down_projection_has_three_act_slices() {
        let llama = Benchmark::Llama1b.spec();
        let down = llama
            .layers
            .iter()
            .find(|l| l.kind == LayerKind::DownProj)
            .unwrap();
        assert_eq!(down.act_lo_slices, 2);
    }

    #[test]
    fn opt_sizes_are_ordered() {
        let a = Benchmark::Opt350m.spec().total_weights();
        let b = Benchmark::Opt1_3b.spec().total_weights();
        let c = Benchmark::Opt2_7b.spec().total_weights();
        assert!(a < b && b < c);
    }

    #[test]
    fn fc2_layers_use_post_gelu_inputs() {
        for b in [Benchmark::DeitBase, Benchmark::Gpt2, Benchmark::Opt2_7b] {
            let spec = b.spec();
            let fc2 = spec
                .layers
                .iter()
                .find(|l| l.kind == LayerKind::MlpFc2)
                .unwrap();
            assert!(
                matches!(fc2.act_dist, DistributionKind::PostGeluOutlier { .. }),
                "{:?}",
                b
            );
        }
    }
}
