//! DNN benchmark substrate for the Panacea reproduction.
//!
//! The paper evaluates on HuggingFace checkpoints of DeiT-base, BERT-base,
//! GPT-2, OPT-350M/1.3B/2.7B, Llama-3.2-1B/3B and ResNet-18. What the
//! accelerator model actually consumes from those models is (a) the GEMM
//! dimensions of every layer and (b) the statistical shape of each layer's
//! input activations (which determines bit-slice sparsity). This crate
//! provides both, from scratch:
//!
//! * [`zoo`] — exact layer-shape inventories of the nine benchmark
//!   models (dimensions from the published architecture configs);
//! * [`conv`] — im2col convolution lowering (the ResNet-18 substrate);
//! * [`engine`] — a small pure-Rust transformer forward engine
//!   (LayerNorm, QKV attention, GELU MLP) with synthetic weights, used to
//!   produce *actual* activation tensors for calibration and end-to-end
//!   examples;
//! * [`profile`] — per-layer sparsity profiling: sample representative
//!   weight/activation tiles, calibrate (optionally with ZPM/DBS), slice,
//!   and measure the HO vector sparsities `ρ_w`, `ρ_x` the simulator needs;
//! * [`proxy`] — quality proxies mapping output SQNR to the accuracy /
//!   perplexity deltas the paper reports (documented in `DESIGN.md` as a
//!   substitution for dataset evaluation).

pub mod conv;
pub mod engine;
pub mod profile;
pub mod proxy;
pub mod zoo;

pub use profile::{profile_layer, profile_model, LayerProfile, ProfileOptions};
pub use zoo::{Benchmark, LayerKind, LayerSpec, ModelSpec};
