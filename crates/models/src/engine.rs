//! A small pure-Rust transformer forward engine.
//!
//! Used to produce *actual* activation tensors (post-LayerNorm, attention
//! context, post-GELU) for calibration demos, the end-to-end examples, and
//! tests — so the quantization pipeline is exercised on data with the same
//! structural correlations real models produce, not just i.i.d. samples.
//!
//! Activations follow the workspace GEMM convention: a tensor is
//! `features × tokens` (`K × N`), weights are `M × K`.

use panacea_tensor::{dist::gelu, dist::DistributionKind, Matrix};

/// Configuration of a [`TinyTransformer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Model width (must be divisible by `n_heads`).
    pub d_model: usize,
    /// Number of attention heads.
    pub n_heads: usize,
    /// MLP hidden width.
    pub d_ff: usize,
    /// Number of blocks.
    pub n_layers: usize,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        TransformerConfig {
            d_model: 64,
            n_heads: 4,
            d_ff: 256,
            n_layers: 2,
        }
    }
}

/// One transformer block's weights.
#[derive(Debug, Clone)]
struct Block {
    w_qkv: Matrix<f32>,
    w_proj: Matrix<f32>,
    w_fc1: Matrix<f32>,
    w_fc2: Matrix<f32>,
}

/// A named activation captured during a forward pass, paired with the
/// weight of the layer that consumes it.
#[derive(Debug, Clone)]
pub struct CapturedLayer {
    /// Layer name, e.g. `"block0.fc2"`.
    pub name: String,
    /// The weight matrix (`M × K`).
    pub weight: Matrix<f32>,
    /// The input activation (`K × N`).
    pub input: Matrix<f32>,
}

/// A small pre-norm transformer with synthetic weights.
///
/// # Examples
///
/// ```
/// use panacea_models::engine::{TinyTransformer, TransformerConfig};
/// use panacea_tensor::{dist::DistributionKind, seeded_rng};
///
/// let model = TinyTransformer::new_random(TransformerConfig::default(), 7);
/// let mut rng = seeded_rng(8);
/// let x = DistributionKind::Gaussian { mean: 0.0, std: 1.0 }
///     .sample_matrix(64, 16, &mut rng);
/// let y = model.forward(&x);
/// assert_eq!(y.shape(), (64, 16));
/// ```
#[derive(Debug, Clone)]
pub struct TinyTransformer {
    cfg: TransformerConfig,
    blocks: Vec<Block>,
}

impl TinyTransformer {
    /// Builds a transformer with Xavier-style random weights.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `n_heads`.
    pub fn new_random(cfg: TransformerConfig, seed: u64) -> Self {
        assert_eq!(
            cfg.d_model % cfg.n_heads,
            0,
            "d_model must divide by n_heads"
        );
        let mut rng = panacea_tensor::seeded_rng(seed);
        let init = |m: usize, k: usize, rng: &mut rand::rngs::StdRng| {
            let std = (2.0 / (m + k) as f32).sqrt();
            DistributionKind::Gaussian { mean: 0.0, std }.sample_matrix(m, k, rng)
        };
        let blocks = (0..cfg.n_layers)
            .map(|_| Block {
                w_qkv: init(3 * cfg.d_model, cfg.d_model, &mut rng),
                w_proj: init(cfg.d_model, cfg.d_model, &mut rng),
                w_fc1: init(cfg.d_ff, cfg.d_model, &mut rng),
                w_fc2: init(cfg.d_model, cfg.d_ff, &mut rng),
            })
            .collect();
        TinyTransformer { cfg, blocks }
    }

    /// The configuration in effect.
    pub fn config(&self) -> TransformerConfig {
        self.cfg
    }

    /// Runs a forward pass on `x` (`d_model × tokens`).
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != d_model`.
    pub fn forward(&self, x: &Matrix<f32>) -> Matrix<f32> {
        self.forward_captured(x, &mut Vec::new())
    }

    /// Runs a forward pass, recording the `(weight, input)` pair of every
    /// weight GEMM into `captures`.
    pub fn forward_captured(
        &self,
        x: &Matrix<f32>,
        captures: &mut Vec<CapturedLayer>,
    ) -> Matrix<f32> {
        assert_eq!(x.rows(), self.cfg.d_model, "input feature dim mismatch");
        let mut h = x.clone();
        for (bi, block) in self.blocks.iter().enumerate() {
            // Attention sub-layer (pre-norm, residual).
            let normed = layer_norm(&h);
            captures.push(CapturedLayer {
                name: format!("block{bi}.qkv"),
                weight: block.w_qkv.clone(),
                input: normed.clone(),
            });
            let qkv = block.w_qkv.gemm_f32(&normed).expect("qkv shapes");
            let ctx = self.attention(&qkv);
            captures.push(CapturedLayer {
                name: format!("block{bi}.attn_proj"),
                weight: block.w_proj.clone(),
                input: ctx.clone(),
            });
            let attn_out = block.w_proj.gemm_f32(&ctx).expect("proj shapes");
            h = add(&h, &attn_out);

            // MLP sub-layer.
            let normed = layer_norm(&h);
            captures.push(CapturedLayer {
                name: format!("block{bi}.fc1"),
                weight: block.w_fc1.clone(),
                input: normed.clone(),
            });
            let hidden = block.w_fc1.gemm_f32(&normed).expect("fc1 shapes");
            let activated = hidden.map(|&v| gelu(v));
            captures.push(CapturedLayer {
                name: format!("block{bi}.fc2"),
                weight: block.w_fc2.clone(),
                input: activated.clone(),
            });
            let mlp_out = block.w_fc2.gemm_f32(&activated).expect("fc2 shapes");
            h = add(&h, &mlp_out);
        }
        h
    }

    /// Runs a forward pass over `x` and returns the captured
    /// `(weight, input)` pair of every weight GEMM — the calibration
    /// front-end the serving runtime prepares models from. Each capture's
    /// activations carry the real structural correlations of this model,
    /// so a layer served from a capture is calibrated on genuine data.
    pub fn captured_layers(&self, x: &Matrix<f32>) -> Vec<CapturedLayer> {
        let mut captures = Vec::new();
        self.forward_captured(x, &mut captures);
        captures
    }

    /// Multi-head self-attention over the stacked QKV tensor
    /// (`3·d_model × tokens`).
    fn attention(&self, qkv: &Matrix<f32>) -> Matrix<f32> {
        let d = self.cfg.d_model;
        let t = qkv.cols();
        let dh = d / self.cfg.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut ctx = Matrix::<f32>::zeros(d, t);
        for h in 0..self.cfg.n_heads {
            let q0 = h * dh;
            // Scores: A[i][j] = (q_i · k_j) · scale, softmax over j.
            for i in 0..t {
                let mut row = vec![0f32; t];
                for (j, slot) in row.iter_mut().enumerate() {
                    let mut dot = 0f32;
                    for f in 0..dh {
                        dot += qkv[(q0 + f, i)] * qkv[(d + q0 + f, j)];
                    }
                    *slot = dot * scale;
                }
                softmax_in_place(&mut row);
                for f in 0..dh {
                    let mut acc = 0f32;
                    for (j, &a) in row.iter().enumerate() {
                        acc += a * qkv[(2 * d + q0 + f, j)];
                    }
                    ctx[(q0 + f, i)] = acc;
                }
            }
        }
        ctx
    }
}

/// Per-token (column-wise) LayerNorm with unit gain and zero bias.
pub fn layer_norm(x: &Matrix<f32>) -> Matrix<f32> {
    let (k, n) = x.shape();
    let mut out = Matrix::<f32>::zeros(k, n);
    for c in 0..n {
        let mut mean = 0f32;
        for r in 0..k {
            mean += x[(r, c)];
        }
        mean /= k as f32;
        let mut var = 0f32;
        for r in 0..k {
            let d = x[(r, c)] - mean;
            var += d * d;
        }
        var /= k as f32;
        let inv = 1.0 / (var + 1e-5).sqrt();
        for r in 0..k {
            out[(r, c)] = (x[(r, c)] - mean) * inv;
        }
    }
    out
}

/// Numerically-stable softmax.
pub fn softmax_in_place(xs: &mut [f32]) {
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0f32;
    for v in xs.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in xs.iter_mut() {
        *v /= sum;
    }
}

fn add(a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32> {
    debug_assert_eq!(a.shape(), b.shape());
    Matrix::from_fn(a.rows(), a.cols(), |r, c| a[(r, c)] + b[(r, c)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use panacea_tensor::stats;

    fn input(d: usize, t: usize, seed: u64) -> Matrix<f32> {
        let mut rng = panacea_tensor::seeded_rng(seed);
        DistributionKind::Gaussian {
            mean: 0.0,
            std: 1.0,
        }
        .sample_matrix(d, t, &mut rng)
    }

    #[test]
    fn forward_preserves_shape_and_is_deterministic() {
        let m = TinyTransformer::new_random(TransformerConfig::default(), 1);
        let x = input(64, 12, 2);
        let y1 = m.forward(&x);
        let y2 = m.forward(&x);
        assert_eq!(y1.shape(), (64, 12));
        assert_eq!(y1, y2);
    }

    #[test]
    fn layer_norm_normalizes_columns() {
        let x = input(32, 8, 3);
        let n = layer_norm(&x);
        for c in 0..8 {
            let col: Vec<f32> = (0..32).map(|r| n[(r, c)]).collect();
            assert!(stats::mean(&col).abs() < 1e-4);
            assert!((stats::std_dev(&col) - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut xs = vec![1.0, 2.0, 3.0, -10.0];
        softmax_in_place(&mut xs);
        let sum: f32 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(xs.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn captures_cover_all_weight_gemms() {
        let cfg = TransformerConfig {
            n_layers: 3,
            ..TransformerConfig::default()
        };
        let m = TinyTransformer::new_random(cfg, 4);
        let mut caps = Vec::new();
        m.forward_captured(&input(64, 8, 5), &mut caps);
        assert_eq!(caps.len(), 3 * 4);
        assert!(caps.iter().any(|c| c.name == "block2.fc2"));
        for c in &caps {
            assert_eq!(c.weight.cols(), c.input.rows(), "{}", c.name);
        }
    }

    #[test]
    fn fc2_inputs_are_post_gelu_one_sided() {
        let m = TinyTransformer::new_random(TransformerConfig::default(), 6);
        let mut caps = Vec::new();
        m.forward_captured(&input(64, 16, 7), &mut caps);
        let fc2 = caps.iter().find(|c| c.name == "block0.fc2").unwrap();
        let min = fc2.input.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(min > -0.5, "post-GELU lower bound violated: {min}");
    }

    #[test]
    #[should_panic(expected = "feature dim mismatch")]
    fn wrong_input_width_panics() {
        let m = TinyTransformer::new_random(TransformerConfig::default(), 8);
        m.forward(&Matrix::<f32>::zeros(32, 4));
    }
}
