//! A small pure-Rust transformer forward engine.
//!
//! Used to produce *actual* activation tensors (post-LayerNorm, attention
//! context, post-GELU) for calibration demos, the end-to-end examples, and
//! tests — so the quantization pipeline is exercised on data with the same
//! structural correlations real models produce, not just i.i.d. samples.
//! It also serves as the float oracle the quantized block engine
//! (`panacea-block`) measures its SQNR against, which is why the non-GEMM
//! math (LayerNorm, softmax, attention, residual add) lives in
//! [`panacea_tensor::ops`] and is merely re-exported here: oracle and
//! quantized engine share one implementation.
//!
//! Activations follow the workspace GEMM convention: a tensor is
//! `features × tokens` (`K × N`), weights are `M × K`.

use panacea_tensor::{dist::gelu, dist::DistributionKind, ops, Matrix};

pub use panacea_tensor::ops::{layer_norm, softmax_in_place};

/// Configuration of a [`TinyTransformer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Model width (must be divisible by `n_heads`).
    pub d_model: usize,
    /// Number of attention heads.
    pub n_heads: usize,
    /// MLP hidden width.
    pub d_ff: usize,
    /// Number of blocks.
    pub n_layers: usize,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        TransformerConfig {
            d_model: 64,
            n_heads: 4,
            d_ff: 256,
            n_layers: 2,
        }
    }
}

/// One transformer block's four weight GEMMs. Public so a quantized
/// block engine can be prepared from — and compared against — the exact
/// weights the float oracle runs.
#[derive(Debug, Clone)]
pub struct BlockWeights {
    /// Stacked QKV projection (`3·d_model × d_model`).
    pub w_qkv: Matrix<f32>,
    /// Attention output projection (`d_model × d_model`).
    pub w_proj: Matrix<f32>,
    /// First MLP projection (`d_ff × d_model`).
    pub w_fc1: Matrix<f32>,
    /// Second MLP projection (`d_model × d_ff`).
    pub w_fc2: Matrix<f32>,
}

/// A named activation captured during a forward pass, paired with the
/// weight of the layer that consumes it.
#[derive(Debug, Clone)]
pub struct CapturedLayer {
    /// Layer name, e.g. `"block0.fc2"`.
    pub name: String,
    /// The weight matrix (`M × K`).
    pub weight: Matrix<f32>,
    /// The input activation (`K × N`).
    pub input: Matrix<f32>,
}

/// A small pre-norm transformer with synthetic weights.
///
/// # Examples
///
/// ```
/// use panacea_models::engine::{TinyTransformer, TransformerConfig};
/// use panacea_tensor::{dist::DistributionKind, seeded_rng};
///
/// let model = TinyTransformer::new_random(TransformerConfig::default(), 7);
/// let mut rng = seeded_rng(8);
/// let x = DistributionKind::Gaussian { mean: 0.0, std: 1.0 }
///     .sample_matrix(64, 16, &mut rng);
/// let y = model.forward(&x);
/// assert_eq!(y.shape(), (64, 16));
/// ```
#[derive(Debug, Clone)]
pub struct TinyTransformer {
    cfg: TransformerConfig,
    blocks: Vec<BlockWeights>,
}

impl TinyTransformer {
    /// Builds a transformer with Xavier-style random weights.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `n_heads`.
    pub fn new_random(cfg: TransformerConfig, seed: u64) -> Self {
        let mut rng = panacea_tensor::seeded_rng(seed);
        let init = |m: usize, k: usize, rng: &mut rand::rngs::StdRng| {
            let std = (2.0 / (m + k) as f32).sqrt();
            DistributionKind::Gaussian { mean: 0.0, std }.sample_matrix(m, k, rng)
        };
        let blocks = (0..cfg.n_layers)
            .map(|_| BlockWeights {
                w_qkv: init(3 * cfg.d_model, cfg.d_model, &mut rng),
                w_proj: init(cfg.d_model, cfg.d_model, &mut rng),
                w_fc1: init(cfg.d_ff, cfg.d_model, &mut rng),
                w_fc2: init(cfg.d_model, cfg.d_ff, &mut rng),
            })
            .collect();
        Self::from_weights(cfg, blocks)
    }

    /// Builds a transformer from explicit block weights — how callers
    /// (e.g. the quantized block engine's tests) construct a float oracle
    /// sharing weights with another execution path.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `n_heads`, the block count
    /// disagrees with `n_layers`, or any weight has the wrong shape.
    pub fn from_weights(cfg: TransformerConfig, blocks: Vec<BlockWeights>) -> Self {
        assert_eq!(
            cfg.d_model % cfg.n_heads,
            0,
            "d_model must divide by n_heads"
        );
        assert_eq!(blocks.len(), cfg.n_layers, "block count != n_layers");
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.w_qkv.shape(), (3 * cfg.d_model, cfg.d_model), "qkv {i}");
            assert_eq!(b.w_proj.shape(), (cfg.d_model, cfg.d_model), "proj {i}");
            assert_eq!(b.w_fc1.shape(), (cfg.d_ff, cfg.d_model), "fc1 {i}");
            assert_eq!(b.w_fc2.shape(), (cfg.d_model, cfg.d_ff), "fc2 {i}");
        }
        TinyTransformer { cfg, blocks }
    }

    /// The configuration in effect.
    pub fn config(&self) -> TransformerConfig {
        self.cfg
    }

    /// The per-block weights, in execution order.
    pub fn blocks(&self) -> &[BlockWeights] {
        &self.blocks
    }

    /// Runs a forward pass on `x` (`d_model × tokens`).
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != d_model`.
    pub fn forward(&self, x: &Matrix<f32>) -> Matrix<f32> {
        self.forward_captured(x, &mut Vec::new())
    }

    /// Applies one block (pre-norm attention + MLP, residuals) to `h` —
    /// the float oracle for a single quantized block.
    ///
    /// # Panics
    ///
    /// Panics if `block >= n_layers` or `h.rows() != d_model`.
    pub fn forward_block(&self, block: usize, h: &Matrix<f32>) -> Matrix<f32> {
        assert_eq!(h.rows(), self.cfg.d_model, "input feature dim mismatch");
        self.run_block(block, h, None)
    }

    /// Runs a forward pass, recording the `(weight, input)` pair of every
    /// weight GEMM into `captures`.
    pub fn forward_captured(
        &self,
        x: &Matrix<f32>,
        captures: &mut Vec<CapturedLayer>,
    ) -> Matrix<f32> {
        assert_eq!(x.rows(), self.cfg.d_model, "input feature dim mismatch");
        let mut h = x.clone();
        for bi in 0..self.blocks.len() {
            h = self.run_block(bi, &h, Some(captures));
        }
        h
    }

    /// One block's math, shared by the plain and capturing paths so they
    /// cannot drift.
    fn run_block(
        &self,
        bi: usize,
        h: &Matrix<f32>,
        mut captures: Option<&mut Vec<CapturedLayer>>,
    ) -> Matrix<f32> {
        let block = &self.blocks[bi];
        let mut capture = |name: &str, weight: &Matrix<f32>, input: &Matrix<f32>| {
            if let Some(captures) = captures.as_deref_mut() {
                captures.push(CapturedLayer {
                    name: format!("block{bi}.{name}"),
                    weight: weight.clone(),
                    input: input.clone(),
                });
            }
        };
        // Attention sub-layer (pre-norm, residual).
        let normed = layer_norm(h);
        capture("qkv", &block.w_qkv, &normed);
        let qkv = block.w_qkv.gemm_f32(&normed).expect("qkv shapes");
        let ctx = ops::multi_head_attention(&qkv, self.cfg.n_heads);
        capture("attn_proj", &block.w_proj, &ctx);
        let attn_out = block.w_proj.gemm_f32(&ctx).expect("proj shapes");
        let h = ops::add(h, &attn_out);

        // MLP sub-layer.
        let normed = layer_norm(&h);
        capture("fc1", &block.w_fc1, &normed);
        let hidden = block.w_fc1.gemm_f32(&normed).expect("fc1 shapes");
        let activated = hidden.map(|&v| gelu(v));
        capture("fc2", &block.w_fc2, &activated);
        let mlp_out = block.w_fc2.gemm_f32(&activated).expect("fc2 shapes");
        ops::add(&h, &mlp_out)
    }

    /// Runs a forward pass over `x` and returns the captured
    /// `(weight, input)` pair of every weight GEMM — the calibration
    /// front-end the serving runtime prepares models from. Each capture's
    /// activations carry the real structural correlations of this model,
    /// so a layer served from a capture is calibrated on genuine data.
    pub fn captured_layers(&self, x: &Matrix<f32>) -> Vec<CapturedLayer> {
        let mut captures = Vec::new();
        self.forward_captured(x, &mut captures);
        captures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panacea_tensor::stats;

    fn input(d: usize, t: usize, seed: u64) -> Matrix<f32> {
        let mut rng = panacea_tensor::seeded_rng(seed);
        DistributionKind::Gaussian {
            mean: 0.0,
            std: 1.0,
        }
        .sample_matrix(d, t, &mut rng)
    }

    #[test]
    fn forward_preserves_shape_and_is_deterministic() {
        let m = TinyTransformer::new_random(TransformerConfig::default(), 1);
        let x = input(64, 12, 2);
        let y1 = m.forward(&x);
        let y2 = m.forward(&x);
        assert_eq!(y1.shape(), (64, 12));
        assert_eq!(y1, y2);
    }

    #[test]
    fn forward_equals_chained_per_block_forwards() {
        let m = TinyTransformer::new_random(TransformerConfig::default(), 9);
        let x = input(64, 8, 10);
        let mut h = x.clone();
        for bi in 0..m.config().n_layers {
            h = m.forward_block(bi, &h);
        }
        assert_eq!(h, m.forward(&x), "per-block path diverged from forward");
    }

    #[test]
    fn from_weights_round_trips_the_random_constructor() {
        let a = TinyTransformer::new_random(TransformerConfig::default(), 11);
        let b = TinyTransformer::from_weights(a.config(), a.blocks().to_vec());
        let x = input(64, 6, 12);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn layer_norm_normalizes_columns() {
        let x = input(32, 8, 3);
        let n = layer_norm(&x);
        for c in 0..8 {
            let col: Vec<f32> = (0..32).map(|r| n[(r, c)]).collect();
            assert!(stats::mean(&col).abs() < 1e-4);
            assert!((stats::std_dev(&col) - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut xs = vec![1.0, 2.0, 3.0, -10.0];
        softmax_in_place(&mut xs);
        let sum: f32 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(xs.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn captures_cover_all_weight_gemms() {
        let cfg = TransformerConfig {
            n_layers: 3,
            ..TransformerConfig::default()
        };
        let m = TinyTransformer::new_random(cfg, 4);
        let mut caps = Vec::new();
        m.forward_captured(&input(64, 8, 5), &mut caps);
        assert_eq!(caps.len(), 3 * 4);
        assert!(caps.iter().any(|c| c.name == "block2.fc2"));
        for c in &caps {
            assert_eq!(c.weight.cols(), c.input.rows(), "{}", c.name);
        }
    }

    #[test]
    fn fc2_inputs_are_post_gelu_one_sided() {
        let m = TinyTransformer::new_random(TransformerConfig::default(), 6);
        let mut caps = Vec::new();
        m.forward_captured(&input(64, 16, 7), &mut caps);
        let fc2 = caps.iter().find(|c| c.name == "block0.fc2").unwrap();
        let min = fc2.input.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(min > -0.5, "post-GELU lower bound violated: {min}");
    }

    #[test]
    #[should_panic(expected = "feature dim mismatch")]
    fn wrong_input_width_panics() {
        let m = TinyTransformer::new_random(TransformerConfig::default(), 8);
        m.forward(&Matrix::<f32>::zeros(32, 4));
    }
}
