//! Quality proxies.
//!
//! The paper reports top-1 accuracy (DeiT/BERT/ResNet) and perplexity
//! (GPT-2/OPT/Llama) measured on datasets we substitute synthetically
//! (see `DESIGN.md`). What the comparisons actually need is a *monotone*
//! mapping from quantization fidelity to quality: higher layer-output
//! SQNR ⇔ smaller accuracy drop / perplexity increase, with FP-exact
//! computation mapping to zero degradation. This module provides that
//! mapping plus helpers to measure per-layer SQNR under the two
//! quantization schemes.

use panacea_quant::dbs::{dbs_truncate, DbsType};
use panacea_quant::{AsymmetricQuantizer, Quantizer, SymmetricQuantizer};
use panacea_tensor::{stats, Matrix};
use serde::{Deserialize, Serialize};

/// Activation quantization scheme under comparison (weights are always
/// symmetric, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActScheme {
    /// Symmetric signed activations (the Sibia/legacy configuration).
    Symmetric,
    /// Asymmetric unsigned activations (Panacea's configuration).
    Asymmetric,
    /// Asymmetric with DBS truncation applied (types 2/3 drop LSBs).
    AsymmetricDbs(DbsType),
}

/// Measures the layer-output SQNR (dB) of `W·x` when `W` is quantized to
/// `w_bits` symmetric and `x` to `a_bits` under `scheme`, relative to the
/// float product.
///
/// # Panics
///
/// Panics if shapes are incompatible.
///
/// # Examples
///
/// ```
/// use panacea_models::proxy::{layer_output_sqnr, ActScheme};
/// use panacea_tensor::{dist::DistributionKind, seeded_rng};
///
/// let mut rng = seeded_rng(3);
/// let w = DistributionKind::Gaussian { mean: 0.0, std: 0.05 }.sample_matrix(16, 32, &mut rng);
/// let x = DistributionKind::AsymmetricGaussian { mean: 1.0, std: 0.4, skew: 0.1 }
///     .sample_matrix(32, 16, &mut rng);
/// let sym = layer_output_sqnr(&w, &x, ActScheme::Symmetric, 7, 8);
/// let asym = layer_output_sqnr(&w, &x, ActScheme::Asymmetric, 7, 8);
/// assert!(asym > sym, "asymmetric should win on one-sided data");
/// ```
pub fn layer_output_sqnr(
    w: &Matrix<f32>,
    x: &Matrix<f32>,
    scheme: ActScheme,
    w_bits: u8,
    a_bits: u8,
) -> f64 {
    let reference = w.gemm_f32(x).expect("shape mismatch");
    // Weights quantize per output channel (standard practice the paper
    // inherits); activations per tensor.
    let mut w_deq = Matrix::<f32>::zeros(w.rows(), w.cols());
    for m in 0..w.rows() {
        let wq = SymmetricQuantizer::calibrate(w.row(m), w_bits);
        for k in 0..w.cols() {
            w_deq[(m, k)] = wq.dequantize(wq.quantize(w[(m, k)]));
        }
    }
    let x_deq = match scheme {
        ActScheme::Symmetric => {
            let q = SymmetricQuantizer::calibrate(x.as_slice(), a_bits);
            x.map(|&v| q.dequantize(q.quantize(v)))
        }
        ActScheme::Asymmetric => {
            let q = AsymmetricQuantizer::calibrate(x.as_slice(), a_bits);
            x.map(|&v| q.dequantize(q.quantize(v)))
        }
        ActScheme::AsymmetricDbs(ty) => {
            let q = AsymmetricQuantizer::calibrate(x.as_slice(), a_bits);
            // The floor-truncation bias (mean 2^{d-1}·scale) is a constant
            // offset, so like the zero-point it folds into the layer bias
            // for free; only the centred residual error remains.
            let half = (1i32 << ty.discarded_lsbs()) / 2;
            x.map(|&v| {
                let code = dbs_truncate(q.quantize(v), ty) + half;
                q.dequantize(code)
            })
        }
    };
    let approx = w_deq.gemm_f32(&x_deq).expect("shape mismatch");
    stats::sqnr_db(reference.as_slice(), approx.as_slice())
}

/// Maps an end-to-end SQNR to a top-1 accuracy loss in percentage points.
///
/// Calibrated so that ≥ 40 dB ≈ lossless (< 0.02 %p), 30 dB ≈ 0.15 %p,
/// 20 dB ≈ 1.5 %p, 15 dB ≈ 4.7 %p — the regime reported across the PTQ
/// literature the paper cites (MSE-based proxies over-penalize
/// outlier-stretched tensors relative to true task loss, hence the gentle
/// slope). Clamped to 50 %p.
pub fn accuracy_loss_pp(sqnr_db: f64) -> f64 {
    if sqnr_db.is_infinite() {
        return 0.0;
    }
    (150.0 * 10f64.powf(-sqnr_db / 10.0)).min(50.0)
}

/// Maps an end-to-end SQNR to a perplexity under the same calibration:
/// `ppl = base · (1 + 15·10^(−sqnr/10))`, clamped at 5× base.
pub fn perplexity_proxy(base_ppl: f64, sqnr_db: f64) -> f64 {
    if sqnr_db.is_infinite() {
        return base_ppl;
    }
    base_ppl * (1.0 + (15.0 * 10f64.powf(-sqnr_db / 10.0)).min(4.0))
}

/// Aggregates per-layer SQNRs into a model-level figure. Layer noises are
/// approximately independent, so noise powers add: the aggregate is the
/// power-domain mean weighted by layer MAC share.
pub fn aggregate_sqnr_db(per_layer: &[(f64, u64)]) -> f64 {
    let total: f64 = per_layer.iter().map(|&(_, macs)| macs as f64).sum();
    if total == 0.0 {
        return f64::INFINITY;
    }
    let noise: f64 = per_layer
        .iter()
        .map(|&(sqnr, macs)| {
            let p = if sqnr.is_infinite() {
                0.0
            } else {
                10f64.powf(-sqnr / 10.0)
            };
            p * macs as f64 / total
        })
        .sum();
    if noise == 0.0 {
        f64::INFINITY
    } else {
        -10.0 * noise.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panacea_tensor::dist::DistributionKind;

    #[test]
    fn lossless_maps_to_zero_degradation() {
        assert_eq!(accuracy_loss_pp(f64::INFINITY), 0.0);
        assert_eq!(perplexity_proxy(10.0, f64::INFINITY), 10.0);
    }

    #[test]
    fn proxies_are_monotone() {
        let mut last_acc = f64::INFINITY;
        let mut last_ppl = f64::INFINITY;
        for sqnr in [10.0, 20.0, 30.0, 40.0, 60.0] {
            let a = accuracy_loss_pp(sqnr);
            let p = perplexity_proxy(12.0, sqnr);
            assert!(a < last_acc, "accuracy loss not decreasing at {sqnr}");
            assert!(p < last_ppl, "ppl not decreasing at {sqnr}");
            last_acc = a;
            last_ppl = p;
        }
    }

    #[test]
    fn proxies_are_bounded() {
        assert!(accuracy_loss_pp(-100.0) <= 50.0);
        assert!(perplexity_proxy(10.0, -100.0) <= 50.0);
    }

    #[test]
    fn dbs_truncation_costs_a_little_quality() {
        let mut rng = panacea_tensor::seeded_rng(5);
        let w = DistributionKind::Gaussian {
            mean: 0.0,
            std: 0.05,
        }
        .sample_matrix(16, 32, &mut rng);
        let x = DistributionKind::Uniform { lo: -1.0, hi: 3.0 }.sample_matrix(32, 16, &mut rng);
        let plain = layer_output_sqnr(&w, &x, ActScheme::Asymmetric, 7, 8);
        let t3 = layer_output_sqnr(&w, &x, ActScheme::AsymmetricDbs(DbsType::Type3), 7, 8);
        assert!(t3 < plain, "truncation should reduce SQNR: {t3} vs {plain}");
        assert!(
            t3 > plain - 15.0,
            "truncation cost should be modest: {t3} vs {plain}"
        );
    }

    #[test]
    fn aggregate_weights_by_macs() {
        // A noisy layer with negligible MACs barely moves the aggregate.
        let agg = aggregate_sqnr_db(&[(40.0, 1_000_000), (10.0, 1)]);
        assert!(agg > 35.0, "aggregate {agg}");
        // Equal MACs: aggregate sits between, nearer the worse layer.
        let agg = aggregate_sqnr_db(&[(40.0, 100), (20.0, 100)]);
        assert!(agg > 20.0 && agg < 30.0, "aggregate {agg}");
    }

    #[test]
    fn aggregate_of_exact_layers_is_infinite() {
        assert_eq!(
            aggregate_sqnr_db(&[(f64::INFINITY, 5), (f64::INFINITY, 9)]),
            f64::INFINITY
        );
        assert_eq!(aggregate_sqnr_db(&[]), f64::INFINITY);
    }
}
