//! Convolution lowered to GEMM via im2col — the substrate behind the
//! ResNet-18 workloads (`models::zoo::resnet18` describes the shapes; this
//! module actually executes them, so post-ReLU feature maps used for
//! calibration come from real convolutions, not just samplers).
//!
//! Layout: a feature map is `C × (H·W)` (channels × positions, row-major
//! spatial); an im2col patch matrix is `(C·kh·kw) × (H_out·W_out)`;
//! a convolution weight is `C_out × (C·kh·kw)` — so `conv = W · im2col(x)`
//! is exactly the GEMM shape the accelerator model consumes.

use panacea_tensor::Matrix;

/// Convolution geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (both dims).
    pub stride: usize,
    /// Zero padding (both dims).
    pub pad: usize,
}

impl ConvShape {
    /// Output height.
    pub fn out_height(&self) -> usize {
        (self.height + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width.
    pub fn out_width(&self) -> usize {
        (self.width + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// GEMM inner dimension `K = C·kh·kw`.
    pub fn gemm_k(&self) -> usize {
        self.channels * self.kh * self.kw
    }

    /// GEMM output columns `N = H_out·W_out`.
    pub fn gemm_n(&self) -> usize {
        self.out_height() * self.out_width()
    }
}

/// Lowers a `C × (H·W)` feature map into the `(C·kh·kw) × (H_out·W_out)`
/// patch matrix (zero padding outside the image).
///
/// # Panics
///
/// Panics if `input` does not have `channels` rows and `H·W` columns, or
/// if the kernel exceeds the padded input.
///
/// # Examples
///
/// A 1×1 kernel with stride 1 is the identity lowering:
///
/// ```
/// use panacea_models::conv::{im2col, ConvShape};
/// use panacea_tensor::Matrix;
///
/// let shape = ConvShape { channels: 2, height: 3, width: 3, kh: 1, kw: 1, stride: 1, pad: 0 };
/// let x = Matrix::from_fn(2, 9, |c, p| (c * 9 + p) as f32);
/// assert_eq!(im2col(&x, shape), x);
/// ```
pub fn im2col(input: &Matrix<f32>, s: ConvShape) -> Matrix<f32> {
    assert_eq!(input.rows(), s.channels, "channel count mismatch");
    assert_eq!(input.cols(), s.height * s.width, "spatial size mismatch");
    assert!(
        s.kh <= s.height + 2 * s.pad && s.kw <= s.width + 2 * s.pad,
        "kernel exceeds padded input"
    );
    let (oh, ow) = (s.out_height(), s.out_width());
    let mut out = Matrix::<f32>::zeros(s.gemm_k(), oh * ow);
    for c in 0..s.channels {
        for ky in 0..s.kh {
            for kx in 0..s.kw {
                let row = (c * s.kh + ky) * s.kw + kx;
                for oy in 0..oh {
                    let iy = (oy * s.stride + ky) as isize - s.pad as isize;
                    if iy < 0 || iy >= s.height as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * s.stride + kx) as isize - s.pad as isize;
                        if ix < 0 || ix >= s.width as isize {
                            continue;
                        }
                        out[(row, oy * ow + ox)] = input[(c, iy as usize * s.width + ix as usize)];
                    }
                }
            }
        }
    }
    out
}

/// Direct (sliding-window) convolution reference: `C_out × (H_out·W_out)`.
///
/// # Panics
///
/// Panics on shape mismatches (weight must be `C_out × C·kh·kw`).
pub fn conv_direct(input: &Matrix<f32>, weight: &Matrix<f32>, s: ConvShape) -> Matrix<f32> {
    assert_eq!(weight.cols(), s.gemm_k(), "weight inner dim mismatch");
    let (oh, ow) = (s.out_height(), s.out_width());
    let mut out = Matrix::<f32>::zeros(weight.rows(), oh * ow);
    for co in 0..weight.rows() {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0f32;
                for c in 0..s.channels {
                    for ky in 0..s.kh {
                        let iy = (oy * s.stride + ky) as isize - s.pad as isize;
                        if iy < 0 || iy >= s.height as isize {
                            continue;
                        }
                        for kx in 0..s.kw {
                            let ix = (ox * s.stride + kx) as isize - s.pad as isize;
                            if ix < 0 || ix >= s.width as isize {
                                continue;
                            }
                            acc += weight[(co, (c * s.kh + ky) * s.kw + kx)]
                                * input[(c, iy as usize * s.width + ix as usize)];
                        }
                    }
                }
                out[(co, oy * ow + ox)] = acc;
            }
        }
    }
    out
}

/// Convolution as GEMM: `W · im2col(x)`, followed by optional ReLU — the
/// path the accelerator executes.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv_gemm(
    input: &Matrix<f32>,
    weight: &Matrix<f32>,
    s: ConvShape,
    relu: bool,
) -> Matrix<f32> {
    let patches = im2col(input, s);
    let out = weight.gemm_f32(&patches).expect("weight × patches");
    if relu {
        out.map(|&v| v.max(0.0))
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panacea_tensor::dist::DistributionKind;

    fn shape_3x3() -> ConvShape {
        ConvShape {
            channels: 3,
            height: 8,
            width: 8,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        }
    }

    fn random_case(s: ConvShape, c_out: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>) {
        let mut rng = panacea_tensor::seeded_rng(seed);
        let x = DistributionKind::Gaussian {
            mean: 0.0,
            std: 1.0,
        }
        .sample_matrix(s.channels, s.height * s.width, &mut rng);
        let w = DistributionKind::Gaussian {
            mean: 0.0,
            std: 0.2,
        }
        .sample_matrix(c_out, s.gemm_k(), &mut rng);
        (x, w)
    }

    #[test]
    fn output_dims_match_formula() {
        let s = shape_3x3();
        assert_eq!((s.out_height(), s.out_width()), (8, 8)); // same-padding
        let s2 = ConvShape { stride: 2, ..s };
        assert_eq!((s2.out_height(), s2.out_width()), (4, 4));
    }

    #[test]
    fn gemm_path_matches_direct_convolution() {
        let s = shape_3x3();
        let (x, w) = random_case(s, 4, 80);
        let a = conv_gemm(&x, &w, s, false);
        let b = conv_direct(&x, &w, s);
        assert_eq!(a.shape(), b.shape());
        for (u, v) in a.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-4, "{u} vs {v}");
        }
    }

    #[test]
    fn strided_and_unpadded_variants_agree() {
        for s in [
            ConvShape {
                channels: 2,
                height: 7,
                width: 9,
                kh: 3,
                kw: 3,
                stride: 2,
                pad: 0,
            },
            ConvShape {
                channels: 1,
                height: 6,
                width: 6,
                kh: 5,
                kw: 5,
                stride: 1,
                pad: 2,
            },
        ] {
            let (x, w) = random_case(s, 3, 81);
            let a = conv_gemm(&x, &w, s, false);
            let b = conv_direct(&x, &w, s);
            for (u, v) in a.iter().zip(b.iter()) {
                assert!((u - v).abs() < 1e-4, "{s:?}");
            }
        }
    }

    #[test]
    fn relu_output_is_one_sided() {
        let s = shape_3x3();
        let (x, w) = random_case(s, 4, 82);
        let out = conv_gemm(&x, &w, s, true);
        assert!(out.iter().all(|&v| v >= 0.0));
        // And a healthy share is exactly zero — the sparsity source the
        // paper's ResNet numbers rely on.
        let zeros = out.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > out.len() / 4, "only {zeros} zeros of {}", out.len());
    }

    #[test]
    fn im2col_shapes_match_zoo_resnet_layers() {
        // stage1 conv: 64 channels, 56×56, 3×3 same-padding.
        let s = ConvShape {
            channels: 64,
            height: 56,
            width: 56,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(s.gemm_k(), 64 * 9);
        assert_eq!(s.gemm_n(), 56 * 56);
    }

    #[test]
    #[should_panic(expected = "channel count mismatch")]
    fn wrong_channel_count_panics() {
        let s = shape_3x3();
        im2col(&Matrix::<f32>::zeros(2, 64), s);
    }
}
