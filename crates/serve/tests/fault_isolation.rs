//! Fault-injection integration tests for the serve runtime.
//!
//! These live in their own test binary (process) on purpose: arming a
//! `faultline` plan is process-global, and the lib unit tests execute
//! batches concurrently — an armed panic site would bleed into them.
//! Here every test arms a plan (an empty one when it needs no faults),
//! so the arm guard's serialization lock keeps tests from observing each
//! other's scripts.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use panacea_faultline::{Fault, FaultPlan, Scenario};
use panacea_serve::testutil::{block_model, hidden};
use panacea_serve::{
    BatchPolicy, LayerSpec, ModelRegistry, PrepareOptions, PreparedModel, Runtime, RuntimeConfig,
    ServeError, SessionConfig, SessionManager,
};
use panacea_tensor::dist::DistributionKind;
use panacea_tensor::Matrix;

fn registry_with(names: &[&str], seed: u64) -> Arc<ModelRegistry> {
    let mut rng = panacea_tensor::seeded_rng(seed);
    let registry = Arc::new(ModelRegistry::new());
    for name in names {
        let w = DistributionKind::Gaussian {
            mean: 0.0,
            std: 0.05,
        }
        .sample_matrix(8, 16, &mut rng);
        let calib = DistributionKind::Gaussian {
            mean: 0.2,
            std: 0.5,
        }
        .sample_matrix(16, 16, &mut rng);
        registry.insert(
            PreparedModel::prepare(
                *name,
                &[LayerSpec::unbiased(w)],
                &calib,
                PrepareOptions::default(),
            )
            .expect("prepare"),
        );
    }
    registry
}

fn codes_for(model: &PreparedModel, cols: usize, salt: usize) -> Matrix<i32> {
    Matrix::from_fn(model.in_features(), cols, |r, c| {
        ((r * 31 + c * 7 + salt * 13) % 200) as i32
    })
}

#[test]
fn injected_panic_answers_internal_and_worker_survives() {
    let registry = registry_with(&["m"], 1);
    let runtime = Runtime::start(
        Arc::clone(&registry),
        RuntimeConfig {
            workers: 1,
            policy: BatchPolicy {
                max_batch: 16,
                max_wait: Duration::from_millis(20),
            },
        },
    );
    let model = registry.get("m").expect("registered");
    // Script the first two executes: whether the two requests coalesce
    // into one batch (one panic answers both) or dispatch separately
    // (each panics on its own), every caller sees `Internal`.
    let guard = FaultPlan::compile(
        0,
        &Scenario::new()
            .fire_at("serve.worker.execute", 0, Fault::Panic)
            .fire_at("serve.worker.execute", 1, Fault::Panic),
    )
    .arm();
    let p1 = runtime
        .submit_to(Arc::clone(&model), codes_for(&model, 2, 0))
        .expect("queued");
    let p2 = runtime
        .submit_to(Arc::clone(&model), codes_for(&model, 3, 1))
        .expect("queued");
    for p in [p1, p2] {
        match p.wait() {
            Err(ServeError::Internal { at }) => assert_eq!(at, "worker_execute"),
            other => panic!("expected Internal, got {other:?}"),
        }
    }
    let panics = runtime.metrics().worker_panics;
    assert!((1..=2).contains(&panics), "got {panics} panics");
    // Disarm, then prove the single worker thread survived the panic:
    // the next request is served normally.
    drop(guard);
    let codes = codes_for(&model, 4, 2);
    let (expect, _) = model.forward_codes(&codes);
    let out = runtime.infer("m", codes).expect("worker survived");
    assert_eq!(out.payload, expect.into());
}

#[test]
fn past_deadline_is_rejected_at_submission() {
    // Empty plan: no faults, but holds the arm serialization lock so a
    // concurrent test's script cannot fire into this runtime.
    let guard = FaultPlan::compile(0, &Scenario::new()).arm();
    let registry = registry_with(&["m"], 2);
    let runtime = Runtime::start(Arc::clone(&registry), RuntimeConfig::default());
    let model = registry.get("m").expect("registered");
    let expired = Instant::now() - Duration::from_millis(1);
    match runtime.submit_to_traced_deadline(
        Arc::clone(&model),
        codes_for(&model, 1, 0),
        None,
        Some(expired),
    ) {
        Err(ServeError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(runtime.metrics().requests, 0);
    drop(guard);
}

#[test]
fn queued_work_expires_while_the_worker_is_stalled() {
    // One worker, stalled 500ms by an injected delay on its first batch;
    // a second request with a 100ms deadline queued behind it must be
    // answered `DeadlineExceeded` when the worker resurfaces — not
    // executed uselessly late.
    let guard = FaultPlan::compile(
        0,
        &Scenario::new().fire_at(
            "serve.worker.execute",
            0,
            Fault::Delay(Duration::from_millis(500)),
        ),
    )
    .arm();
    let registry = registry_with(&["a", "b"], 3);
    let runtime = Runtime::start(
        Arc::clone(&registry),
        RuntimeConfig {
            workers: 1,
            policy: BatchPolicy {
                max_batch: 16,
                max_wait: Duration::from_millis(1),
            },
        },
    );
    let a = registry.get("a").expect("registered");
    let b = registry.get("b").expect("registered");
    let pa = runtime
        .submit_to(Arc::clone(&a), codes_for(&a, 1, 0))
        .expect("queued");
    let pb = runtime
        .submit_to_traced_deadline(
            Arc::clone(&b),
            codes_for(&b, 1, 1),
            None,
            Some(Instant::now() + Duration::from_millis(100)),
        )
        .expect("queued");
    assert!(pa.wait().is_ok(), "stalled batch still completes");
    match pb.wait() {
        Err(ServeError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let m = runtime.metrics();
    assert_eq!(m.expired, 1);
    assert_eq!(m.requests, 1, "expired request never reached the GEMM");
    drop(guard);
}

#[test]
fn mid_step_panic_evicts_the_session_and_batchmates_stay_exact() {
    // Three sessions step concurrently; a panic is scripted into the
    // first fused pass (and, if that pass carried batchmates, into the
    // first solo retry). Exactly one session — the one whose own step
    // died — is evicted as poisoned; the others are answered from solo
    // retries (or their own later passes) with bits identical to solo
    // stepping, and no KV bytes leak.
    let guard = FaultPlan::compile(
        0,
        &Scenario::new()
            .fire_at("serve.decode.fused_pass", 0, Fault::Panic)
            .fire_at("serve.decode.solo_retry", 0, Fault::Panic),
    )
    .arm();
    let (model, _) = block_model("fault-block", 70);
    let model = Arc::new(model);
    let mgr = Arc::new(SessionManager::new(SessionConfig {
        max_decode_batch: 4,
        decode_max_wait: Duration::from_millis(100),
        ..SessionConfig::default()
    }));
    let ids: Vec<u64> = (0..3)
        .map(|_| mgr.open(Arc::clone(&model)).expect("opened"))
        .collect();
    let barrier = Arc::new(Barrier::new(3));
    let handles: Vec<_> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            let mgr = Arc::clone(&mgr);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                (id, i, mgr.step(id, &hidden(16, 2, i)))
            })
        })
        .collect();
    let mut survivors = Vec::new();
    let mut evicted = Vec::new();
    for h in handles {
        let (id, i, r) = h.join().expect("stepper joined");
        match r {
            Ok((out, tokens, _)) => {
                assert_eq!(tokens, 2);
                survivors.push((id, i, out));
            }
            Err(ServeError::Internal { at }) => {
                assert!(
                    at == "decode_fused_pass" || at == "decode_solo_retry",
                    "unexpected site {at}"
                );
                evicted.push(id);
            }
            other => panic!("expected Ok or Internal, got {other:?}"),
        }
    }
    assert_eq!(evicted.len(), 1, "exactly one session rode the panic");
    assert_eq!(survivors.len(), 2);
    let stats = mgr.stats();
    assert_eq!(stats.evicted_poisoned, 1);
    assert!(stats.worker_panics >= 1, "got {}", stats.worker_panics);
    assert_eq!(stats.open_sessions, 2);
    // The poisoned session is gone: stepping it again errors cleanly.
    assert!(matches!(
        mgr.step(evicted[0], &hidden(16, 1, 9)),
        Err(ServeError::UnknownSession { .. })
    ));
    drop(guard);
    // Bit-exactness oracle: replay each survivor's input through solo
    // inline stepping on a fresh manager (after disarm).
    let solo = SessionManager::new(SessionConfig {
        max_decode_batch: 0,
        ..SessionConfig::default()
    });
    for (_, i, out) in &survivors {
        let sid = solo.open(Arc::clone(&model)).expect("opened");
        let (expect, _, _) = solo.step(sid, &hidden(16, 2, *i)).expect("solo step");
        assert_eq!(out, &expect, "survivor diverged from solo stepping");
    }
    // KV budget settles: eviction already settled the poisoned slot;
    // closing the survivors returns the footprint to zero — no leak.
    for (id, _, _) in &survivors {
        mgr.close(*id).expect("closed");
    }
    assert_eq!(mgr.stats().kv_bytes, 0);
}

#[test]
fn queued_decode_step_expires_behind_a_stalled_pass() {
    // Session A's pass stalls 500ms on an injected delay; session B's
    // step, queued behind it with a 100ms deadline, must be answered
    // `DeadlineExceeded` at dequeue — never executed late.
    let guard = FaultPlan::compile(
        0,
        &Scenario::new().fire_at(
            "serve.decode.fused_pass",
            0,
            Fault::Delay(Duration::from_millis(500)),
        ),
    )
    .arm();
    let (model, _) = block_model("stall-block", 71);
    let model = Arc::new(model);
    let mgr = Arc::new(SessionManager::new(SessionConfig {
        max_decode_batch: 4,
        decode_max_wait: Duration::ZERO,
        ..SessionConfig::default()
    }));
    let a = mgr.open(Arc::clone(&model)).expect("opened");
    let b = mgr.open(Arc::clone(&model)).expect("opened");
    let stalled = {
        let mgr = Arc::clone(&mgr);
        thread::spawn(move || mgr.step(a, &hidden(16, 1, 0)))
    };
    // Let A's pass dispatch (zero linger) and hit the delay, then queue
    // B behind it with a deadline the stall will blow through.
    thread::sleep(Duration::from_millis(50));
    let deadline = Instant::now() + Duration::from_millis(100);
    match mgr.step_traced_deadline(b, &hidden(16, 1, 1), None, Some(deadline)) {
        Err(ServeError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(
        stalled.join().expect("joined").is_ok(),
        "stalled step still completes"
    );
    let stats = mgr.stats();
    assert_eq!(stats.expired_steps, 1);
    assert_eq!(stats.steps, 1, "the expired step never reached the GEMM");
    // B itself is healthy — only that one step expired.
    assert!(mgr.step(b, &hidden(16, 1, 2)).is_ok());
    drop(guard);
}
