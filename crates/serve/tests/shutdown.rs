//! Regression tests for clean runtime shutdown.
//!
//! The runtime's contract: once `submit` returns `Ok`, the request is
//! answered even if shutdown begins immediately afterwards; shutdown
//! joins every worker (no detached threads); and post-shutdown submits
//! are refused rather than silently dropped.

use std::sync::Arc;
use std::time::Duration;

use panacea_serve::{
    BatchPolicy, LayerSpec, ModelRegistry, PrepareOptions, PreparedModel, Runtime, RuntimeConfig,
    ServeError,
};
use panacea_tensor::dist::DistributionKind;
use panacea_tensor::Matrix;

fn registry() -> Arc<ModelRegistry> {
    let mut rng = panacea_tensor::seeded_rng(21);
    let w = DistributionKind::Gaussian {
        mean: 0.0,
        std: 0.05,
    }
    .sample_matrix(8, 16, &mut rng);
    let calib = DistributionKind::Gaussian {
        mean: 0.2,
        std: 0.5,
    }
    .sample_matrix(16, 16, &mut rng);
    let registry = Arc::new(ModelRegistry::new());
    registry.insert(
        PreparedModel::prepare(
            "m",
            &[LayerSpec::unbiased(w)],
            &calib,
            PrepareOptions::default(),
        )
        .expect("prepare"),
    );
    registry
}

fn codes(salt: usize) -> Matrix<i32> {
    Matrix::from_fn(16, 2, |r, c| ((r * 31 + c * 7 + salt * 13) % 200) as i32)
}

#[test]
fn shutdown_while_queued_drains_every_request() {
    let registry = registry();
    // One worker lingering a long time: requests pile up queued, so
    // shutdown races against a deliberately sleepy batcher.
    let mut runtime = Runtime::start(
        Arc::clone(&registry),
        RuntimeConfig {
            workers: 1,
            policy: BatchPolicy {
                max_batch: 64,
                max_wait: Duration::from_secs(5),
            },
        },
    );
    let model = registry.get("m").expect("registered");
    let expected: Vec<Matrix<i32>> = (0..12).map(|i| model.forward_codes(&codes(i)).0).collect();
    let pending: Vec<_> = (0..12)
        .map(|i| runtime.submit("m", codes(i)).expect("accepted"))
        .collect();

    // Shut down immediately: the linger must be cut short, the queue
    // drained, and every accepted request answered bit-exactly.
    runtime.shutdown();
    for (p, expect) in pending.into_iter().zip(expected) {
        let out = p
            .wait()
            .expect("accepted request answered despite shutdown");
        assert_eq!(out.payload, expect.clone().into());
    }
    assert_eq!(runtime.metrics().requests, 12);
}

#[test]
fn drop_joins_workers_and_answers_queued_requests() {
    let registry = registry();
    let model = registry.get("m").expect("registered");
    let expected = model.forward_codes(&codes(3)).0;
    let pending;
    {
        let runtime = Runtime::start(
            Arc::clone(&registry),
            RuntimeConfig {
                workers: 3,
                policy: BatchPolicy {
                    max_batch: 8,
                    max_wait: Duration::from_secs(5),
                },
            },
        );
        pending = runtime.submit("m", codes(3)).expect("accepted");
        // `runtime` dropped here: Drop must join all three workers, which
        // requires them to notice shutdown and drain the queue first.
    }
    let out = pending.wait().expect("drop drained the queue");
    assert_eq!(out.payload, expected.into());
}

#[test]
fn submits_after_shutdown_are_refused_not_lost() {
    let registry = registry();
    let mut runtime = Runtime::start(Arc::clone(&registry), RuntimeConfig::default());
    runtime.shutdown();
    match runtime.submit("m", codes(0)) {
        Err(ServeError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    // And metrics survive shutdown for post-mortem reporting.
    assert_eq!(runtime.metrics().requests, 0);
}

#[test]
fn shutdown_with_empty_queue_terminates_promptly() {
    let registry = registry();
    let mut runtime = Runtime::start(
        registry,
        RuntimeConfig {
            workers: 4,
            policy: BatchPolicy {
                max_batch: 8,
                max_wait: Duration::from_secs(60),
            },
        },
    );
    // Workers are parked in the idle wait; shutdown must wake and join
    // them without any request ever arriving. (A hang here fails the
    // test by timeout.)
    runtime.shutdown();
}
