//! Property test: a batch of requests served through `panacea-serve` is
//! bit-exact versus running each request alone through `core::pipeline`.
//!
//! This is the serving runtime's core contract — dynamic batching is an
//! optimization, never an approximation.

use std::sync::Arc;

use panacea_core::pipeline::{pad_cols_to_vector_len, QuantizedLinear};
use panacea_quant::dbs::DbsConfig;
use panacea_quant::ActivationCalibrator;
use panacea_serve::{
    BatchPolicy, LayerSpec, ModelRegistry, PrepareOptions, PreparedModel, Runtime, RuntimeConfig,
};
use panacea_tensor::dist::DistributionKind;
use panacea_tensor::Matrix;
use proptest::prelude::*;

/// A small single-layer model family parameterized by seed, plus the raw
/// pieces needed to rebuild the same layer directly via `core::pipeline`.
fn build(seed: u64, m: usize, k: usize) -> (Arc<PreparedModel>, QuantizedLinear) {
    let mut rng = panacea_tensor::seeded_rng(seed);
    let w = DistributionKind::Gaussian {
        mean: 0.0,
        std: 0.05,
    }
    .sample_matrix(m, k, &mut rng);
    let calib = DistributionKind::TransformerAct {
        core_mean: 0.1,
        core_std: 0.4,
        pos_scale: 8.0,
        neg_scale: 5.0,
        outlier_frac: 0.02,
    }
    .sample_matrix(k, 32, &mut rng);

    // The reference layer, built by hand exactly as PreparedModel does it.
    let mut cal = ActivationCalibrator::new(8)
        .with_zpm(true)
        .with_dbs(DbsConfig::default());
    cal.observe(&calib);
    let cfg = cal.finalize();
    let reference = QuantizedLinear::prepare(&w, &vec![0.0; m], 7, cfg).expect("reference layer");

    let model = PreparedModel::prepare(
        "prop",
        &[LayerSpec::unbiased(w)],
        &calib,
        PrepareOptions::default(),
    )
    .expect("prepared model");
    (Arc::new(model), reference)
}

fn request_strategy(k: usize) -> impl Strategy<Value = Matrix<i32>> {
    (1usize..7).prop_map(move |cols| {
        Matrix::from_fn(k, cols, |r, c| ((r * 37 + c * 11 + cols * 5) % 256) as i32)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever mix of widths rides a batch, every response is
    /// bit-identical to the solo `core::pipeline` execution.
    #[test]
    fn batched_serving_matches_solo_pipeline(
        seed in 0u64..4,
        widths in proptest::collection::vec(1usize..6, 1..10),
    ) {
        let (model, reference) = build(seed, 8, 16);
        let registry = Arc::new(ModelRegistry::new());
        let shared = registry.insert((*model).clone());
        let runtime = Runtime::start(
            Arc::clone(&registry),
            RuntimeConfig {
                workers: 2,
                policy: BatchPolicy {
                    max_batch: 16,
                    max_wait: std::time::Duration::from_millis(5),
                },
            },
        );

        let requests: Vec<Matrix<i32>> = widths
            .iter()
            .enumerate()
            .map(|(i, &cols)| {
                Matrix::from_fn(16, cols, |r, c| ((r * 31 + c * 7 + i * 13) % 256) as i32)
            })
            .collect();

        // Enqueue everything first so the batcher actually coalesces.
        let pending: Vec<_> = requests
            .iter()
            .map(|codes| {
                runtime
                    .submit_to(Arc::clone(&shared), codes.clone())
                    .expect("queued")
            })
            .collect();

        for (codes, p) in requests.iter().zip(pending) {
            let out = p.wait().expect("served");
            // Solo reference through core::pipeline directly.
            let (padded, pad) = pad_cols_to_vector_len(codes);
            let (solo, _) = reference.forward(&padded);
            let solo = solo.submatrix(0, 0, solo.rows(), solo.cols() - pad);
            prop_assert_eq!(out.payload.as_codes().expect("chain output"), &solo);
        }
    }

    /// The float convenience path agrees with the runtime's output
    /// dequantization for arbitrary request widths.
    #[test]
    fn runtime_output_scale_matches_model(width in request_strategy(16)) {
        let (model, _) = build(9, 8, 16);
        let registry = Arc::new(ModelRegistry::new());
        let shared = registry.insert((*model).clone());
        let runtime = Runtime::start(Arc::clone(&registry), RuntimeConfig::default());
        let out = runtime
            .submit_to(Arc::clone(&shared), width.clone())
            .expect("queued")
            .wait()
            .expect("served");
        let (direct, _) = shared.forward_codes(&width);
        prop_assert_eq!(out.payload.as_codes().expect("chain output"), &direct);
        prop_assert!((out.scale - shared.output_scale()).abs() < 1e-18);
    }
}
