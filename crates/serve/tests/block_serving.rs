//! Transformer-block requests through the full runtime: queueing,
//! dynamic batching, and split-back must be bit-exact versus direct
//! `QuantizedBlock` execution, for any mix of sequence lengths.

use std::sync::Arc;
use std::time::Duration;

use panacea_block::QuantizedBlock;
use panacea_serve::testutil::{
    block_model as shared_block_model, direct_forward as direct, hidden,
};
use panacea_serve::{BatchPolicy, ModelRegistry, Payload, PreparedModel, Runtime, RuntimeConfig};
use panacea_tensor::Matrix;

fn block_model(seed: u64) -> (PreparedModel, Vec<QuantizedBlock>) {
    shared_block_model("decoder", seed)
}

#[test]
fn coalesced_block_requests_are_bit_exact_vs_direct_execution() {
    let (model, blocks) = block_model(50);
    let registry = Arc::new(ModelRegistry::new());
    let shared = registry.insert(model);
    // One worker + generous linger: queued sequences must coalesce into
    // one wide GEMM pass while attention stays per sequence.
    let runtime = Runtime::start(
        Arc::clone(&registry),
        RuntimeConfig {
            workers: 1,
            policy: BatchPolicy {
                max_batch: 64,
                max_wait: Duration::from_millis(50),
            },
        },
    );
    let inputs: Vec<Matrix<f32>> = [1usize, 3, 2, 5, 1]
        .iter()
        .enumerate()
        .map(|(i, &w)| hidden(16, w, i))
        .collect();
    let pending: Vec<_> = inputs
        .iter()
        .map(|x| {
            runtime
                .submit_to(Arc::clone(&shared), x.clone())
                .expect("queued")
        })
        .collect();
    for (x, p) in inputs.iter().zip(pending) {
        let out = p.wait().expect("served");
        assert!(
            matches!(out.payload, Payload::Hidden(_)),
            "block responses must carry hidden states"
        );
        assert_eq!(
            out.to_f32(),
            direct(&blocks, x),
            "runtime block serving diverged from direct execution"
        );
    }
    let m = runtime.metrics();
    assert_eq!(m.requests, 5);
    assert!(
        m.batches < 5,
        "5 lingering sequences should share batches, got {}",
        m.batches
    );
}

#[test]
fn non_finite_block_request_is_rejected_at_submission() {
    let (model, _) = block_model(51);
    let registry = Arc::new(ModelRegistry::new());
    registry.insert(model);
    let runtime = Runtime::start(Arc::clone(&registry), RuntimeConfig::default());
    let nan = Matrix::from_fn(16, 2, |_, _| f32::NAN);
    assert!(matches!(
        runtime.infer("decoder", nan),
        Err(panacea_serve::ServeError::NonFiniteInput)
    ));
}

#[test]
fn payload_kind_mismatches_are_rejected_at_submission() {
    let (model, _) = block_model(52);
    let registry = Arc::new(ModelRegistry::new());
    registry.insert(model);
    let runtime = Runtime::start(Arc::clone(&registry), RuntimeConfig::default());
    // Codes against a block model: caught by validate, in one place.
    assert!(matches!(
        runtime.infer("decoder", Matrix::<i32>::zeros(16, 2)),
        Err(panacea_serve::ServeError::PayloadKindMismatch {
            model_is_block: true,
            ..
        })
    ));
}
