//! Invariants of `serve::metrics`: the derived ratios never divide by
//! zero (empty runtime, zero elapsed compute) and snapshots taken while
//! requests are in flight are monotone — counters only grow.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use panacea_serve::{
    BatchPolicy, LayerSpec, MetricsSnapshot, ModelRegistry, PrepareOptions, PreparedModel, Runtime,
    RuntimeConfig,
};
use panacea_tensor::dist::DistributionKind;
use panacea_tensor::Matrix;

fn registry_with_model(seed: u64) -> Arc<ModelRegistry> {
    let mut rng = panacea_tensor::seeded_rng(seed);
    let w = DistributionKind::Gaussian {
        mean: 0.0,
        std: 0.05,
    }
    .sample_matrix(8, 16, &mut rng);
    let calib = DistributionKind::Gaussian {
        mean: 0.2,
        std: 0.5,
    }
    .sample_matrix(16, 16, &mut rng);
    let registry = Arc::new(ModelRegistry::new());
    registry.insert(
        PreparedModel::prepare(
            "m",
            &[LayerSpec::unbiased(w)],
            &calib,
            PrepareOptions::default(),
        )
        .expect("prepare"),
    );
    registry
}

#[test]
fn zero_batches_yield_zero_ratios_not_nan() {
    let s = MetricsSnapshot::default();
    assert_eq!(s.mean_batch_cols(), 0.0);
    assert_eq!(s.columns_per_second(), 0.0);
    assert_eq!(s.padding_overhead(), 0.0);
    assert!(s.mean_batch_cols().is_finite());
    assert!(s.columns_per_second().is_finite());
    assert!(s.padding_overhead().is_finite());
}

#[test]
fn zero_elapsed_time_with_served_columns_is_finite() {
    // A batch can complete faster than the clock's resolution; the
    // throughput ratio must degrade to 0, not to infinity or NaN.
    let s = MetricsSnapshot {
        requests: 4,
        batches: 2,
        columns: 16,
        compute_time: Duration::ZERO,
        ..MetricsSnapshot::default()
    };
    assert_eq!(s.columns_per_second(), 0.0);
    assert!((s.mean_batch_cols() - 8.0).abs() < 1e-12);
    assert!(s.padding_overhead().is_finite());
}

#[test]
fn fresh_runtime_reports_safe_metrics() {
    let registry = registry_with_model(1);
    let runtime = Runtime::start(registry, RuntimeConfig::default());
    let s = runtime.metrics();
    assert_eq!(s.requests, 0);
    assert_eq!(s.mean_batch_cols(), 0.0);
    assert_eq!(s.columns_per_second(), 0.0);
    assert_eq!(s.padding_overhead(), 0.0);
}

fn assert_monotone(prev: &MetricsSnapshot, next: &MetricsSnapshot) {
    assert!(next.requests >= prev.requests, "requests went backwards");
    assert!(next.batches >= prev.batches, "batches went backwards");
    assert!(next.columns >= prev.columns, "columns went backwards");
    assert!(
        next.padded_cols >= prev.padded_cols,
        "padded_cols went backwards"
    );
    assert!(
        next.compute_time >= prev.compute_time,
        "compute_time went backwards"
    );
    assert!(
        next.max_latency >= prev.max_latency,
        "max_latency went backwards"
    );
    assert!(
        next.widest_batch >= prev.widest_batch,
        "widest_batch went backwards"
    );
}

#[test]
fn snapshots_are_monotone_under_concurrent_submits() {
    let registry = registry_with_model(2);
    let runtime = Arc::new(Runtime::start(
        Arc::clone(&registry),
        RuntimeConfig {
            workers: 3,
            policy: BatchPolicy {
                max_batch: 8,
                max_wait: Duration::from_micros(200),
            },
        },
    ));
    let model = registry.get("m").expect("registered");

    const SUBMITTERS: usize = 4;
    const PER_THREAD: usize = 24;
    let mut threads = Vec::new();
    for t in 0..SUBMITTERS {
        let runtime = Arc::clone(&runtime);
        let model = Arc::clone(&model);
        threads.push(thread::spawn(move || {
            for i in 0..PER_THREAD {
                let cols = 1 + (t + i) % 3;
                let codes = Matrix::from_fn(model.in_features(), cols, |r, c| {
                    ((r * 31 + c * 7 + t * 13 + i) % 200) as i32
                });
                runtime
                    .submit_to(Arc::clone(&model), codes)
                    .expect("queued")
                    .wait()
                    .expect("served");
            }
        }));
    }

    // Reader thread: every observation must dominate the previous one.
    let reader = {
        let runtime = Arc::clone(&runtime);
        thread::spawn(move || {
            let mut prev = runtime.metrics();
            for _ in 0..200 {
                let next = runtime.metrics();
                assert_monotone(&prev, &next);
                prev = next;
                thread::yield_now();
            }
        })
    };

    for th in threads {
        th.join().expect("submitter");
    }
    reader.join().expect("reader");

    let s = runtime.metrics();
    assert_eq!(s.requests, (SUBMITTERS * PER_THREAD) as u64);
    assert!(s.batches >= 1);
    assert!(s.mean_batch_cols().is_finite());
    assert!(s.columns_per_second().is_finite());
    assert!(s.padding_overhead() >= 0.0 && s.padding_overhead() < 1.0);
}
