//! Continuous batching for decode: coalescing concurrent sessions'
//! single-token steps into one GEMM pass per layer.
//!
//! KV caching (PR 5) made one decode step O(prefix), but every step
//! still executed alone on its caller's thread: a single-token step runs
//! the whole block stack at GEMM width `N = 1`, and the PE array pads
//! `N` up to the vector width — so a fleet of concurrent decode sessions
//! wastes up to [`VECTOR_LEN`]× the MACs and serializes work the GEMM
//! could amortize. The [`DecodeBatcher`] fixes that: callers enqueue
//! steps, and a dedicated worker stacks the queued steps of the *same*
//! prepared model (one column group per session) into a single fused
//! pass — one QKV/proj/fc1/fc2 GEMM per block over all sessions'
//! columns, attention per session against its own cache
//! ([`PreparedModel::forward_decode_batch`](crate::PreparedModel::forward_decode_batch)).
//!
//! Guarantees:
//!
//! * **Bit-exact** — each session's output is bit-identical to stepping
//!   it alone (column-exact coalescing, same accumulation order); the
//!   batcher changes throughput, never bits.
//! * **Same-model grouping** — sessions on different prepared instances
//!   never share a pass (their weights differ), mirroring the stateless
//!   batcher's pointer-identity grouping.
//! * **One step per session per pass** — two queued steps for one
//!   session are order-dependent (the second attends over the first's
//!   K/V), so the second waits for the next pass.
//! * **No poisoning** — steps are validated *before* they can enqueue
//!   ([`PreparedModel::validate_decode`](crate::PreparedModel::validate_decode)),
//!   so a malformed request fails on its own thread and can never take
//!   a fused batch down.
//!
//! Knobs: `max_batch` bounds the fused pass's total columns, and
//! `max_wait` is how long the oldest queued step lingers for batchmates.
//! Even at zero linger, batches form naturally under load: while one
//! pass executes, the next wave of steps queues up behind it.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use panacea_bitslice::VECTOR_LEN;
use panacea_block::KvCache;
use panacea_core::Workload;
use panacea_telemetry::{
    EventSeverity, FlightRecorder, Histogram, HistogramSnapshot, MetricRegistry, TraceContext,
};
use panacea_tensor::Matrix;

use crate::session::{Session, Slot};

/// What a fused pass hands back to each waiting step: the session's
/// output columns, its total token count afterwards, and the workload of
/// the whole batch the step rode in (mirroring the stateless runtime's
/// per-request workload reporting).
pub(crate) type StepOutcome = (Matrix<f32>, usize, Workload);

/// How a step failed inside the batching worker. The session manager
/// maps these onto [`ServeError`](crate::ServeError) — and, for
/// poisoned failures, evicts the owning session before answering.
#[derive(Debug, Clone, Copy)]
pub(crate) enum StepFailure {
    /// The worker caught a panic executing this step. `poisoned` means
    /// the panic was attributed to *this session's own* work (its solo
    /// retry died, or it was alone in the pass), so its KV state —
    /// though rolled back — is suspect and the session must be evicted.
    Internal { poisoned: bool, at: &'static str },
    /// The step's deadline expired while it was queued; it was dropped
    /// before any GEMM work.
    DeadlineExceeded,
}

/// One queued decode step.
#[derive(Debug)]
struct DecodeJob {
    session: u64,
    slot: Arc<Slot>,
    hidden: Matrix<f32>,
    responder: mpsc::Sender<Result<StepOutcome, StepFailure>>,
    enqueued_at: Instant,
    /// When present, the step is answered `DeadlineExceeded` instead of
    /// executed once this instant passes.
    deadline: Option<Instant>,
    /// When present, the worker records `queue_wait` and a
    /// link-annotated `decode_pass` span into this step's trace.
    ctx: Option<TraceContext>,
}

#[derive(Debug)]
struct BatchQueue {
    queue: VecDeque<DecodeJob>,
    shutting_down: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<BatchQueue>,
    work_ready: Condvar,
    max_batch: usize,
    max_wait: Duration,
    batches: AtomicU64,
    padded_cols: AtomicU64,
    /// Panics caught (and isolated) inside fused passes or solo retries.
    panics: AtomicU64,
    /// Steps answered `DeadlineExceeded` at dequeue.
    expired: AtomicU64,
    /// Enqueue-to-pass-start linger, per step (ns).
    linger: Histogram,
    /// Fused-pass duration, per pass (ns).
    pass: Histogram,
    /// Sessions fused per pass (raw counts, not durations) — the full
    /// occupancy distribution rather than just a mean.
    occupancy: Histogram,
    /// Optional dimensional registry: per-model windowed pass duration
    /// under (model, "decode", "fused_pass").
    dims: Option<MetricRegistry>,
    /// Optional flight recorder: fused-pass formations land in the
    /// event ring.
    recorder: Option<FlightRecorder>,
}

/// The continuous-batching executor behind
/// [`SessionManager::step`](crate::SessionManager::step): a queue of
/// decode steps plus one worker thread fusing them into batched GEMM
/// passes. Owned by the session manager; dropping it drains the queue
/// and joins the worker.
#[derive(Debug)]
pub struct DecodeBatcher {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl DecodeBatcher {
    /// Spawns the batching worker. `max_batch` bounds a fused pass's
    /// total columns (at least the head step always dispatches);
    /// `max_wait` is the linger for batchmates; `dims`, when present,
    /// receives per-model windowed fused-pass durations; `recorder`,
    /// when present, receives fused-pass formation events.
    pub(crate) fn new(
        max_batch: usize,
        max_wait: Duration,
        dims: Option<MetricRegistry>,
        recorder: Option<FlightRecorder>,
    ) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(BatchQueue {
                queue: VecDeque::new(),
                shutting_down: false,
            }),
            work_ready: Condvar::new(),
            max_batch: max_batch.max(1),
            max_wait,
            batches: AtomicU64::new(0),
            padded_cols: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            linger: Histogram::new(),
            pass: Histogram::new(),
            occupancy: Histogram::new(),
            dims,
            recorder,
        });
        let worker = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("panacea-decode-batch".to_string())
                .spawn(move || worker_loop(&shared))
                .expect("spawn decode batcher")
        };
        DecodeBatcher {
            shared,
            worker: Some(worker),
        }
    }

    /// Enqueues one pre-validated step and returns the channel its
    /// outcome arrives on. The caller blocks on the receiver; a closed
    /// channel means the worker died (surfaced as `WorkerLost`).
    pub(crate) fn submit(
        &self,
        session: u64,
        slot: Arc<Slot>,
        hidden: Matrix<f32>,
        ctx: Option<TraceContext>,
        deadline: Option<Instant>,
    ) -> mpsc::Receiver<Result<StepOutcome, StepFailure>> {
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.shared.state.lock().expect("decode queue poisoned");
            st.queue.push_back(DecodeJob {
                session,
                slot,
                hidden,
                responder: tx,
                enqueued_at: Instant::now(),
                deadline,
                ctx,
            });
        }
        self.shared.work_ready.notify_one();
        rx
    }

    /// Fused passes executed so far.
    pub fn batches(&self) -> u64 {
        self.shared.batches.load(Ordering::Relaxed)
    }

    /// Columns the fused passes zero-padded to reach the PE vector
    /// width — the waste continuous batching exists to reclaim.
    pub fn padded_cols(&self) -> u64 {
        self.shared.padded_cols.load(Ordering::Relaxed)
    }

    /// Panics caught (and isolated) inside fused passes or solo retries.
    pub fn worker_panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Steps answered `DeadlineExceeded` at dequeue instead of executed.
    pub fn expired_steps(&self) -> u64 {
        self.shared.expired.load(Ordering::Relaxed)
    }

    /// Per-stage histograms: `decode_linger` and `decode_pass` carry
    /// nanosecond samples, `decode_occupancy` carries sessions-per-pass
    /// counts.
    pub fn stage_snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        vec![
            ("decode_linger", self.shared.linger.snapshot()),
            ("decode_pass", self.shared.pass.snapshot()),
            ("decode_occupancy", self.shared.occupancy.snapshot()),
        ]
    }
}

impl Drop for DecodeBatcher {
    fn drop(&mut self) {
        let Some(worker) = self.worker.take() else {
            return;
        };
        {
            let mut st = self.shared.state.lock().expect("decode queue poisoned");
            st.shutting_down = true;
        }
        self.shared.work_ready.notify_all();
        let _ = worker.join();
    }
}

/// Columns the head's model could fuse right now: same prepared
/// instance, at most one step per session.
fn eligible_cols(queue: &VecDeque<DecodeJob>) -> usize {
    let Some(head) = queue.front() else { return 0 };
    let mut sessions: Vec<u64> = Vec::with_capacity(queue.len());
    let mut cols = 0;
    for job in queue {
        if Arc::ptr_eq(&job.slot.model, &head.slot.model) && !sessions.contains(&job.session) {
            sessions.push(job.session);
            cols += job.hidden.cols();
        }
    }
    cols
}

/// Whether every queued step targets the head's model. The worker only
/// lingers while this holds — once another model waits behind the head,
/// lingering would head-of-line-block it.
fn queue_is_single_model(queue: &VecDeque<DecodeJob>) -> bool {
    let Some(head) = queue.front() else {
        return true;
    };
    queue
        .iter()
        .all(|j| Arc::ptr_eq(&j.slot.model, &head.slot.model))
}

/// Removes the head step plus every queued same-model step for a
/// session not already in the batch, in arrival order, until the column
/// budget fills. Steps for other models (or repeat sessions) keep their
/// relative order.
fn take_decode_batch(queue: &mut VecDeque<DecodeJob>, max_batch: usize) -> Option<Vec<DecodeJob>> {
    let head = queue.pop_front()?;
    let model = Arc::clone(&head.slot.model);
    let mut cols = head.hidden.cols();
    let mut sessions = vec![head.session];
    let mut jobs = vec![head];
    let mut i = 0;
    while i < queue.len() && cols < max_batch {
        let candidate = &queue[i];
        if Arc::ptr_eq(&candidate.slot.model, &model)
            && !sessions.contains(&candidate.session)
            // The budget is a hard bound: a companion that would push
            // the pass past it waits for the next one, so a queued
            // single-token step is never head-of-line-blocked behind a
            // wide chunk riding its pass.
            && cols + candidate.hidden.cols() <= max_batch
        {
            let job = queue.remove(i).expect("index in bounds");
            cols += job.hidden.cols();
            sessions.push(job.session);
            jobs.push(job);
        } else {
            i += 1;
        }
    }
    Some(jobs)
}

/// Records one caught panic: counter, per-model dimensional error (so
/// SLO error-rate targets see it), and a `worker_panic` event.
fn record_panic(shared: &Shared, model_name: &str, at: &'static str) {
    shared.panics.fetch_add(1, Ordering::Relaxed);
    if let Some(dims) = &shared.dims {
        dims.cell(model_name, "worker", at).record_error();
    }
    if let Some(recorder) = &shared.recorder {
        recorder.record(
            EventSeverity::Error,
            "worker_panic",
            format!("at={at} model={model_name}"),
        );
    }
}

/// Drops every queued step whose deadline has already passed, answering
/// each `DeadlineExceeded` — expired decode work never reaches a GEMM.
fn purge_expired_steps(queue: &mut VecDeque<DecodeJob>, now: Instant, shared: &Shared) {
    let before = queue.len();
    queue.retain(|j| {
        let expired = j.deadline.is_some_and(|d| now >= d);
        if expired {
            let _ = j.responder.send(Err(StepFailure::DeadlineExceeded));
        }
        !expired
    });
    let n = (before - queue.len()) as u64;
    if n > 0 {
        shared.expired.fetch_add(n, Ordering::Relaxed);
    }
}

/// Executes one fused pass: lock every participating session for the
/// duration of the pass (a session's steps are serialized by definition;
/// holding the lock across the pass is exactly the serialization a solo
/// step would impose, and releasing it mid-pass would let an eviction
/// tear half-advanced KV state), run the batched decode, split the
/// outputs back per session, answer every caller.
///
/// # Panic isolation
///
/// The fused pass runs under `catch_unwind` with the session guards held
/// *outside* the closure, so a mid-pass panic (a model bug, or the
/// `serve.decode.fused_pass` fault site firing) cannot poison the cells.
/// A panicking pass may have appended K/V to some blocks but not others,
/// so every participant's cache is rolled back to its pre-pass token
/// count ([`KvCache::truncate_tokens`]) — then each batchmate is retried
/// **solo** (still bit-exact: solo stepping is the definition of
/// exactness). A step whose solo retry also panics is the poison pill:
/// its cache is rolled back again and its caller is answered
/// `Internal { poisoned: true }`, which makes the session manager evict
/// the session. A single-step pass attributes the panic directly.
fn execute_batch(jobs: Vec<DecodeJob>, shared: &Shared) {
    let model = Arc::clone(&jobs[0].slot.model);
    let pass_started = Instant::now();
    for job in &jobs {
        shared
            .linger
            .record_duration(pass_started.duration_since(job.enqueued_at));
    }
    shared.occupancy.record(jobs.len() as u64);
    // Poison-tolerant lock: a cell poisoned by a caller-thread panic
    // (inline stepping) has already been rolled back to a consistent
    // prefix by that path's own isolation before the lock released.
    let mut guards: Vec<MutexGuard<'_, Session>> = jobs
        .iter()
        .map(|j| j.slot.cell.lock().unwrap_or_else(PoisonError::into_inner))
        .collect();
    let hiddens: Vec<&Matrix<f32>> = jobs.iter().map(|j| &j.hidden).collect();
    let segments: Vec<usize> = hiddens.iter().map(|h| h.cols()).collect();
    let stacked = Matrix::hstack(&hiddens).expect("validated steps share the model width");
    // Pre-pass token counts — the rollback points if the pass dies.
    let snapshots: Vec<usize> = guards.iter().map(|g| g.kv.tokens()).collect();
    let ran = catch_unwind(AssertUnwindSafe(|| {
        panacea_faultline::point("serve.decode.fused_pass");
        let mut kvs: Vec<&mut KvCache> = guards.iter_mut().map(|g| &mut g.kv).collect();
        model.forward_decode_batch_prevalidated(&stacked, &segments, &mut kvs)
    }));
    let outcome = match ran {
        Ok(outcome) => outcome,
        Err(_) => {
            record_panic(shared, model.name(), "decode_fused_pass");
            // Roll every participant back to its pre-pass prefix: the
            // dead pass may have appended K/V to some blocks only.
            for (guard, &snap) in guards.iter_mut().zip(&snapshots) {
                guard.kv.truncate_tokens(snap);
            }
            if jobs.len() == 1 {
                // Alone in the pass: the panic is this step's own.
                drop(guards);
                let _ = jobs[0].responder.send(Err(StepFailure::Internal {
                    poisoned: true,
                    at: "decode_fused_pass",
                }));
                return;
            }
            // Retry each batchmate solo; a retry that panics again is
            // the culprit and poisons only its own session.
            let now = Instant::now();
            for ((job, guard), &snap) in jobs.iter().zip(guards.iter_mut()).zip(&snapshots) {
                let solo = catch_unwind(AssertUnwindSafe(|| {
                    panacea_faultline::point("serve.decode.solo_retry");
                    let mut kvs: Vec<&mut KvCache> = vec![&mut guard.kv];
                    model.forward_decode_batch_prevalidated(
                        &job.hidden,
                        &[job.hidden.cols()],
                        &mut kvs,
                    )
                }));
                let answer = match solo {
                    Ok(Ok((out, wl))) => {
                        guard.last_used = now;
                        Ok((out, guard.kv.tokens(), wl))
                    }
                    Ok(Err(_)) => Err(StepFailure::Internal {
                        poisoned: false,
                        at: "decode_solo_retry",
                    }),
                    Err(_) => {
                        record_panic(shared, model.name(), "decode_solo_retry");
                        guard.kv.truncate_tokens(snap);
                        Err(StepFailure::Internal {
                            poisoned: true,
                            at: "decode_solo_retry",
                        })
                    }
                };
                let _ = job.responder.send(answer);
            }
            return;
        }
    };
    // The error arm is unreachable by construction: every step was
    // validated against its model before enqueue and its cache was
    // built by that model. Answering (not dropping) keeps callers from
    // hanging if it ever fires.
    let Ok((out, wl)) = outcome else {
        drop(guards);
        for job in &jobs {
            let _ = job.responder.send(Err(StepFailure::Internal {
                poisoned: false,
                at: "decode_fused_pass",
            }));
        }
        return;
    };
    {
        let now = Instant::now();
        shared
            .pass
            .record_duration(now.duration_since(pass_started));
        if let Some(dims) = &shared.dims {
            dims.cell(model.name(), "decode", "fused_pass")
                .record_latency(now.duration_since(pass_started));
        }
        let tokens: Vec<usize> = guards
            .iter_mut()
            .map(|g| {
                g.last_used = now;
                g.kv.tokens()
            })
            .collect();
        drop(guards);
        let total: usize = segments.iter().sum();
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared.padded_cols.fetch_add(
            ((VECTOR_LEN - total % VECTOR_LEN) % VECTOR_LEN) as u64,
            Ordering::Relaxed,
        );
        if let Some(recorder) = &shared.recorder {
            recorder.record(
                EventSeverity::Info,
                "batch_formed",
                format!("fused=decode sessions={} cols={total}", jobs.len()),
            );
        }
        let parts = out
            .split_cols(&segments)
            .expect("decode keeps one output column per input column");
        // Trace ids of every traced step in this pass: each traced
        // step's `decode_pass` span links to its batchmates' traces.
        let traced_ids: Vec<u64> = jobs
            .iter()
            .filter_map(|j| j.ctx.as_ref().map(|c| c.trace_id()))
            .collect();
        for ((job, part), tok) in jobs.into_iter().zip(parts).zip(tokens) {
            // Spans land before the send: the stepping thread is blocked
            // on this channel, so its trace cannot finish earlier.
            if let Some(ctx) = &job.ctx {
                ctx.record_span("queue_wait", job.enqueued_at, pass_started);
                let links: Vec<u64> = traced_ids
                    .iter()
                    .copied()
                    .filter(|&id| id != ctx.trace_id())
                    .collect();
                ctx.record_span_linked("decode_pass", pass_started, now, links);
            }
            // A dropped receiver just means the caller stopped waiting;
            // the session still advanced.
            let _ = job.responder.send(Ok((part, tok, wl)));
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut st = shared.state.lock().expect("decode queue poisoned");
    loop {
        purge_expired_steps(&mut st.queue, Instant::now(), shared);
        // Idle: wait for work, or for shutdown with a drained queue.
        while st.queue.is_empty() {
            if st.shutting_down {
                return;
            }
            st = shared.work_ready.wait(st).expect("decode queue poisoned");
            purge_expired_steps(&mut st.queue, Instant::now(), shared);
        }

        // Linger until the head model's fusable columns fill the
        // budget, the head step's dispatch deadline passes, another
        // model queues behind the head, or shutdown forces dispatch.
        while !st.shutting_down {
            if eligible_cols(&st.queue) >= shared.max_batch || !queue_is_single_model(&st.queue) {
                break;
            }
            let deadline = match st.queue.front() {
                // Lingering for batchmates must never push the head
                // past its own deadline.
                Some(job) => {
                    let linger = job.enqueued_at + shared.max_wait;
                    job.deadline.map_or(linger, |d| linger.min(d))
                }
                None => break,
            };
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = shared
                .work_ready
                .wait_timeout(st, deadline - now)
                .expect("decode queue poisoned");
            st = guard;
            purge_expired_steps(&mut st.queue, Instant::now(), shared);
            if timeout.timed_out() {
                break;
            }
        }

        // Last-instant expiry: a head whose deadline elapsed during the
        // linger is answered `DeadlineExceeded`, not stepped late.
        purge_expired_steps(&mut st.queue, Instant::now(), shared);
        let Some(jobs) = take_decode_batch(&mut st.queue, shared.max_batch) else {
            continue;
        };
        drop(st);
        // Defense in depth: `execute_batch` isolates pass panics itself;
        // if anything outside that isolation still unwinds, the dropped
        // responders surface `WorkerLost` to the waiting callers and the
        // batching worker survives for subsequent steps.
        let _ = catch_unwind(AssertUnwindSafe(|| execute_batch(jobs, shared)));
        st = shared.state.lock().expect("decode queue poisoned");
    }
}
