//! Stateful decode sessions: per-sequence KV caches with lifecycle
//! management.
//!
//! A decode session owns one sequence's [`KvCache`] across a
//! transformer-block stack. The [`SessionManager`] is the
//! serving-layer owner of that state: it creates sessions
//! ([`open`](SessionManager::open)), advances them
//! ([`step`](SessionManager::step) — one KV-cached
//! [`PreparedModel::forward_decode`] call per step), and bounds their
//! footprint two ways:
//!
//! * **idle eviction** — a session untouched for
//!   [`SessionConfig::idle_timeout`] is dropped on the next manager
//!   operation (or an explicit [`sweep`](SessionManager::sweep));
//! * **byte budget** — the total resident KV bytes across sessions may
//!   not exceed [`SessionConfig::max_kv_bytes`]; a step that would
//!   overflow first evicts least-recently-used *idle* sessions and, if
//!   the budget still cannot fit, fails with
//!   [`ServeError::KvBudgetExceeded`] instead of growing unboundedly.
//!
//! Steps are **continuously batched**: [`step`](SessionManager::step)
//! submits into the manager's [`DecodeBatcher`], whose worker fuses the
//! queued steps of concurrent sessions on the same model into one GEMM
//! pass per layer ([`PreparedModel::forward_decode_batch`]) — aggregate
//! decode throughput scales with concurrency by filling the GEMM `N`
//! dimension, while every session's outputs stay bit-identical to solo
//! stepping. Knobs: [`SessionConfig::max_decode_batch`] (columns per
//! fused pass; `0`/`1` disables batching and steps execute inline on
//! the caller thread, the pre-batching behavior) and
//! [`SessionConfig::decode_max_wait`] (linger for batchmates). A
//! session's steps are serialized by its own lock — held by the worker
//! for the fused pass it rides in — while distinct sessions proceed
//! concurrently. Stepping a closed or evicted session fails with
//! [`ServeError::UnknownSession`] — the caller re-opens and replays its
//! prefix.
//!
//! Idle eviction is amortized: the O(sessions) idle scan runs at most
//! once per sweep period (a fraction of the idle timeout), not on every
//! step, so steady-state stepping costs O(1) in session count under the
//! manager's map lock. An explicit [`sweep`](SessionManager::sweep)
//! always scans.
//!
//! Session state is **never** admissible to a response cache: a step's
//! output depends on the KV prefix, not just its payload, so replaying
//! a cached step would corrupt (or lie about) session state. The
//! gateway's `RequestCache` is reachable only from the stateless
//! request path; this module has no cache access at all.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, TryLockError};
use std::time::{Duration, Instant};

use panacea_block::KvCache;
use panacea_core::Workload;
use panacea_faultline::Fault;
use panacea_telemetry::{
    EventSeverity, FlightRecorder, Histogram, HistogramSnapshot, MetricRegistry, TraceContext,
};
use panacea_tensor::Matrix;

use crate::decode_batch::{DecodeBatcher, StepFailure};
use crate::model::PreparedModel;
use crate::ServeError;

/// Lifecycle, footprint, and continuous-batching knobs for a
/// [`SessionManager`].
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// A session untouched this long is evicted by the next amortized
    /// sweep (or an explicit [`SessionManager::sweep`]).
    pub idle_timeout: Duration,
    /// Total resident KV bytes allowed across all sessions.
    pub max_kv_bytes: usize,
    /// Column budget of one fused decode pass (continuous batching).
    /// `0` or `1` disables the batcher entirely: steps execute inline
    /// on the caller's thread, one session per GEMM pass. A chunk at
    /// least this wide also executes inline — it would fill a pass by
    /// itself, and caller-thread execution keeps concurrent wide
    /// prefills parallel instead of serialized behind the worker.
    pub max_decode_batch: usize,
    /// How long the oldest queued decode step may linger for batchmates
    /// before its fused pass dispatches anyway. Batches also form with
    /// zero linger — steps queue up behind the pass in flight — but a
    /// short linger fills passes when arrivals trickle in.
    pub decode_max_wait: Duration,
    /// KV capacity (in tokens) pre-reserved when a session opens, so a
    /// typical prefill appends into pre-sized buffers instead of growing
    /// them mid-chunk.
    pub open_reserve_tokens: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            idle_timeout: Duration::from_secs(60),
            max_kv_bytes: 64 << 20,
            max_decode_batch: 32,
            decode_max_wait: Duration::ZERO,
            open_reserve_tokens: 64,
        }
    }
}

/// Point-in-time session counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions currently resident.
    pub open_sessions: usize,
    /// KV bytes currently resident across all sessions.
    pub kv_bytes: usize,
    /// Sessions ever opened.
    pub opened: u64,
    /// Sessions closed by their caller.
    pub closed: u64,
    /// Sessions evicted by the idle timeout.
    pub evicted_idle: u64,
    /// Sessions evicted to make room under the byte budget.
    pub evicted_budget: u64,
    /// Decode steps executed.
    pub steps: u64,
    /// Tokens decoded across all steps.
    pub tokens: u64,
    /// Fused decode passes executed by the continuous batcher (zero
    /// when batching is disabled).
    pub decode_batches: u64,
    /// Columns the fused passes zero-padded to reach the PE vector
    /// width.
    pub decode_padded_cols: u64,
    /// Panics caught (and isolated) on decode execution paths — fused
    /// passes, solo retries, and inline steps. Each one answered its
    /// caller instead of killing a worker.
    pub worker_panics: u64,
    /// Sessions evicted because a panic died inside their own step —
    /// the KV state was rolled back but the session is not trusted.
    pub evicted_poisoned: u64,
    /// Decode steps answered `DeadlineExceeded` at dequeue instead of
    /// executed.
    pub expired_steps: u64,
}

impl SessionStats {
    /// Average steps per fused decode pass — `steps / decode_batches`,
    /// the occupancy figure that shows continuous batching working
    /// (`> 1` means concurrent sessions actually shared GEMM passes).
    /// Zero when no fused pass has run.
    pub fn decode_batch_occupancy(&self) -> f64 {
        if self.decode_batches == 0 {
            0.0
        } else {
            self.steps as f64 / self.decode_batches as f64
        }
    }
}

/// Source of process-unique session ids; 0 is never issued.
static NEXT_SESSION: AtomicU64 = AtomicU64::new(1);

/// The mutable half of a session, behind its per-session lock. The
/// decode batcher's worker holds this lock for the fused pass a step
/// rides in.
#[derive(Debug)]
pub(crate) struct Session {
    pub(crate) kv: KvCache,
    pub(crate) last_used: Instant,
}

/// One session's map entry: the per-session lock plus the immutable
/// metadata the manager (and the decode batcher) read without taking it.
#[derive(Debug)]
pub(crate) struct Slot {
    pub(crate) cell: Mutex<Session>,
    /// The prepared model this session decodes on — immutable for the
    /// session's lifetime, so the batcher groups same-model steps by
    /// pointer identity without touching the cell.
    pub(crate) model: Arc<PreparedModel>,
    bytes_per_token: usize,
    /// Bytes this slot currently contributes to the manager's
    /// `total_bytes` — resident KV plus any reservation for a step in
    /// flight. Mutated and read only under the manager's inner lock
    /// (hence `Relaxed`); it exists so removal (close/eviction) can
    /// settle a slot's accounting exactly once without touching the
    /// per-session lock, whatever a concurrent step is doing.
    accounted: AtomicUsize,
}

#[derive(Debug, Default)]
struct Counters {
    opened: u64,
    closed: u64,
    evicted_idle: u64,
    evicted_budget: u64,
    evicted_poisoned: u64,
    steps: u64,
    tokens: u64,
}

#[derive(Debug)]
struct Inner {
    sessions: HashMap<u64, Arc<Slot>>,
    /// Sum of resident KV bytes, including reservations for in-flight
    /// steps.
    total_bytes: usize,
    /// When the next amortized idle scan is due — steps and opens before
    /// this instant skip the O(sessions) scan entirely.
    next_idle_sweep: Instant,
    counters: Counters,
}

/// Owner of decode-session state and lifecycle. See the module docs.
#[derive(Debug)]
pub struct SessionManager {
    config: SessionConfig,
    inner: Mutex<Inner>,
    /// Continuous-batching executor for decode steps; `None` when
    /// [`SessionConfig::max_decode_batch`] disables batching (steps run
    /// inline on the caller's thread).
    batcher: Option<DecodeBatcher>,
    /// End-to-end [`step`](Self::step) latency (ns), successes only.
    step_latency: Histogram,
    /// Panics caught on the inline (caller-thread) step path; the
    /// batcher counts its own.
    inline_panics: AtomicU64,
    /// Optional dimensional registry: per-model windowed step latency
    /// under (model, "decode", "step"), plus the batcher's fused-pass
    /// dimension.
    dims: Option<MetricRegistry>,
    /// Optional flight recorder: session opens, closes, and evictions
    /// land in the event ring.
    recorder: Option<FlightRecorder>,
}

impl SessionManager {
    /// An empty manager enforcing `config`.
    pub fn new(config: SessionConfig) -> Self {
        SessionManager::build(config, None, None)
    }

    /// [`new`](Self::new) with a dimensional metric registry: steps
    /// record per-model windowed latency under (model, "decode",
    /// "step") and fused passes under (model, "decode", "fused_pass").
    pub fn with_dims(config: SessionConfig, dims: MetricRegistry) -> Self {
        SessionManager::build(config, Some(dims), None)
    }

    /// [`with_dims`](Self::with_dims) plus a flight recorder: session
    /// lifecycle (open/close/evict) and fused-pass formations land in
    /// the event ring.
    pub fn with_observability(
        config: SessionConfig,
        dims: MetricRegistry,
        recorder: FlightRecorder,
    ) -> Self {
        SessionManager::build(config, Some(dims), Some(recorder))
    }

    fn build(
        config: SessionConfig,
        dims: Option<MetricRegistry>,
        recorder: Option<FlightRecorder>,
    ) -> Self {
        let batcher = (config.max_decode_batch > 1).then(|| {
            DecodeBatcher::new(
                config.max_decode_batch,
                config.decode_max_wait,
                dims.clone(),
                recorder.clone(),
            )
        });
        SessionManager {
            config,
            inner: Mutex::new(Inner {
                sessions: HashMap::new(),
                total_bytes: 0,
                next_idle_sweep: Instant::now() + idle_sweep_period(config.idle_timeout),
                counters: Counters::default(),
            }),
            batcher,
            step_latency: Histogram::new(),
            inline_panics: AtomicU64::new(0),
            dims,
            recorder,
        }
    }

    /// The bounds being enforced.
    pub fn config(&self) -> SessionConfig {
        self.config
    }

    /// Opens a session on a transformer-block model, returning its
    /// process-unique id. The session starts with an empty KV cache;
    /// the prefix (prompt) arrives through [`step`](Self::step) calls,
    /// which accept any column chunking.
    ///
    /// # Errors
    ///
    /// [`ServeError::PayloadKindMismatch`] when `model` is a linear
    /// chain (there is no attention state to cache).
    pub fn open(&self, model: Arc<PreparedModel>) -> Result<u64, ServeError> {
        let mut kv = model.new_kv_cache()?;
        // Pre-size the K/V buffers for a typical prefill, so the first
        // chunk appends into reserved capacity instead of growing vecs.
        kv.reserve_tokens(self.config.open_reserve_tokens);
        let bytes_per_token = kv.bytes_per_token();
        let id = NEXT_SESSION.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot {
            cell: Mutex::new(Session {
                kv,
                last_used: Instant::now(),
            }),
            model,
            bytes_per_token,
            accounted: AtomicUsize::new(0),
        });
        let model_name = slot.model.name().to_string();
        {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            self.maybe_evict_idle_locked(&mut inner, Instant::now());
            inner.sessions.insert(id, slot);
            inner.counters.opened += 1;
        }
        if let Some(recorder) = &self.recorder {
            recorder.record(
                EventSeverity::Info,
                "session_open",
                format!("session={id} model={model_name}"),
            );
        }
        Ok(id)
    }

    /// Whether `session` is currently resident — how a sharded front
    /// end finds the manager holding a session's KV state.
    pub fn contains(&self, session: u64) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .sessions
            .contains_key(&session)
    }

    /// The model name a resident session decodes on — how a front end
    /// attributes session verbs to per-model metric dimensions.
    pub fn model_name(&self, session: u64) -> Option<String> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .sessions
            .get(&session)
            .map(|slot| slot.model.name().to_string())
    }

    /// Advances a session by `hidden` (`d_model × t_new` new tokens,
    /// any chunking), returning the new tokens' output hidden states,
    /// the session's total token count afterwards, and the workload of
    /// the fused pass the step rode in. Bit-identical to a full causal
    /// recompute of the whole prefix — see
    /// [`PreparedModel::forward_decode`] — *and* to solo stepping: the
    /// continuous batcher coalesces concurrent sessions' steps into one
    /// GEMM pass per layer without changing any session's bits.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if the session was never opened,
    /// was closed, or has been evicted;
    /// [`ServeError::KvBudgetExceeded`] if the step cannot fit the byte
    /// budget even after evicting idle sessions; the input-contract
    /// errors of [`PreparedModel::validate_decode`]; and
    /// [`ServeError::WorkerLost`] if the batching worker died (never
    /// under clean shutdown).
    pub fn step(
        &self,
        session: u64,
        hidden: &Matrix<f32>,
    ) -> Result<(Matrix<f32>, usize, Workload), ServeError> {
        self.step_traced(session, hidden, None)
    }

    /// [`step`](Self::step) carrying a [`TraceContext`]: when the step
    /// rides a fused pass, the batching worker records `queue_wait` and
    /// a `decode_pass` span (linked to its batchmates' traces) into the
    /// submitting request's trace. Inline steps record no extra spans —
    /// the caller's own span already covers them.
    ///
    /// # Errors
    ///
    /// Same as [`step`](Self::step).
    pub fn step_traced(
        &self,
        session: u64,
        hidden: &Matrix<f32>,
        ctx: Option<TraceContext>,
    ) -> Result<(Matrix<f32>, usize, Workload), ServeError> {
        self.step_traced_deadline(session, hidden, ctx, None)
    }

    /// [`step_traced`](Self::step_traced) with an optional deadline.
    /// A step whose deadline has already passed is rejected before it
    /// reserves budget; one that expires while queued behind a stalled
    /// fused pass is answered [`ServeError::DeadlineExceeded`] at
    /// dequeue instead of executed uselessly late. A deadline never
    /// interrupts a pass in flight — KV state stays consistent.
    ///
    /// # Errors
    ///
    /// Same as [`step`](Self::step), plus
    /// [`ServeError::DeadlineExceeded`].
    pub fn step_traced_deadline(
        &self,
        session: u64,
        hidden: &Matrix<f32>,
        ctx: Option<TraceContext>,
        deadline: Option<Instant>,
    ) -> Result<(Matrix<f32>, usize, Workload), ServeError> {
        let now = Instant::now();
        if deadline.is_some_and(|d| now >= d) {
            return Err(ServeError::DeadlineExceeded);
        }
        if let Some(fault) = panacea_faultline::point("serve.session.step") {
            if matches!(fault, Fault::Error) {
                return Err(ServeError::Internal { at: "session_step" });
            }
        }
        let (slot, growth) = {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            self.maybe_evict_idle_locked(&mut inner, now);
            let slot = Arc::clone(
                inner
                    .sessions
                    .get(&session)
                    .ok_or(ServeError::UnknownSession { session })?,
            );
            let growth = slot.bytes_per_token.saturating_mul(hidden.cols());
            let session_bytes = slot.accounted.load(Ordering::Relaxed);
            // A step this session could never fit even alone must not
            // evict anyone else on its doomed way to the error.
            if session_bytes + growth > self.config.max_kv_bytes {
                return Err(ServeError::KvBudgetExceeded {
                    needed: session_bytes + growth,
                    budget: self.config.max_kv_bytes,
                });
            }
            if inner.total_bytes + growth > self.config.max_kv_bytes {
                self.evict_for_budget_locked(&mut inner, session, growth, now);
            }
            if inner.total_bytes + growth > self.config.max_kv_bytes {
                return Err(ServeError::KvBudgetExceeded {
                    needed: inner.total_bytes + growth,
                    budget: self.config.max_kv_bytes,
                });
            }
            // Reserve the growth while the step runs, so concurrent
            // steps cannot jointly overshoot the budget. The slot's
            // `accounted` carries the reservation, so a removal racing
            // this step settles it exactly once.
            slot.accounted.fetch_add(growth, Ordering::Relaxed);
            inner.total_bytes += growth;
            (slot, growth)
        };

        // Validate before the step can reach a fused batch (or the
        // session lock): a malformed step fails on this thread, rolls
        // its reservation back below, and can never poison batchmates.
        // A chunk at least as wide as the fused-pass budget executes
        // inline too — it would fill a pass alone anyway, and running
        // wide prefills on their caller threads keeps them parallel
        // across sessions instead of serializing behind one worker.
        let batcher = self
            .batcher
            .as_ref()
            .filter(|_| hidden.cols() < self.config.max_decode_batch);
        let result = match slot.model.validate_decode(hidden) {
            Err(e) => Err(e),
            Ok(()) => match batcher {
                // Continuous batching: enqueue and block for the fused
                // pass this step rides in. The worker holds the session
                // lock for the pass and updates `last_used`.
                Some(batcher) => {
                    match batcher
                        .submit(session, Arc::clone(&slot), hidden.clone(), ctx, deadline)
                        .recv()
                    {
                        Ok(Ok(outcome)) => Ok(outcome),
                        Ok(Err(StepFailure::DeadlineExceeded)) => Err(ServeError::DeadlineExceeded),
                        Ok(Err(StepFailure::Internal { poisoned, at })) => {
                            if poisoned {
                                self.evict_poisoned(session, at);
                            }
                            Err(ServeError::Internal { at })
                        }
                        Err(_) => Err(ServeError::WorkerLost),
                    }
                }
                // Batching disabled (or a budget-filling chunk):
                // execute inline, one session per GEMM pass.
                None => {
                    let mut s = slot.cell.lock().unwrap_or_else(PoisonError::into_inner);
                    let snapshot = s.kv.tokens();
                    let ran = catch_unwind(AssertUnwindSafe(|| {
                        panacea_faultline::point("serve.decode.fused_pass");
                        slot.model.forward_decode_prevalidated(hidden, &mut s.kv)
                    }));
                    match ran {
                        Ok(r) => {
                            s.last_used = Instant::now();
                            r.map(|(out, wl)| (out, s.kv.tokens(), wl))
                        }
                        Err(_) => {
                            // The pass died mid-append: roll the KV back
                            // to the pre-step prefix (the lock was never
                            // poisoned — the panic was caught inside the
                            // closure), then evict the session as
                            // untrusted.
                            s.kv.truncate_tokens(snapshot);
                            drop(s);
                            self.inline_panics.fetch_add(1, Ordering::Relaxed);
                            if let Some(dims) = &self.dims {
                                dims.cell(slot.model.name(), "decode", "decode_inline")
                                    .record_error();
                            }
                            if let Some(recorder) = &self.recorder {
                                recorder.record(
                                    EventSeverity::Error,
                                    "worker_panic",
                                    format!(
                                        "at=decode_inline model={} session={session}",
                                        slot.model.name()
                                    ),
                                );
                            }
                            self.evict_poisoned(session, "decode_inline");
                            Err(ServeError::Internal {
                                at: "decode_inline",
                            })
                        }
                    }
                }
            },
        };

        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match &result {
            // On success the reservation simply *becomes* the resident
            // bytes — nothing to adjust. If the session was removed
            // mid-step (close or eviction), the removal already settled
            // the slot's whole `accounted` (reservation included), and
            // the orphaned cache frees when the last Arc goes.
            Ok((_, _, _)) => {
                inner.counters.steps += 1;
                inner.counters.tokens += hidden.cols() as u64;
                self.step_latency.record_duration(now.elapsed());
                if let Some(dims) = &self.dims {
                    dims.cell(slot.model.name(), "decode", "step")
                        .record_latency(now.elapsed());
                }
            }
            // A failed step grew nothing: release the reservation —
            // unless a concurrent removal already settled it.
            Err(_) => {
                if inner.sessions.contains_key(&session) {
                    slot.accounted.fetch_sub(growth, Ordering::Relaxed);
                    inner.total_bytes = inner.total_bytes.saturating_sub(growth);
                }
            }
        }
        result
    }

    /// Closes a session, freeing its KV state; returns the tokens it
    /// had decoded.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if it does not exist (never
    /// opened, already closed, or evicted).
    pub fn close(&self, session: u64) -> Result<usize, ServeError> {
        let slot = {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            let slot = inner
                .sessions
                .remove(&session)
                .ok_or(ServeError::UnknownSession { session })?;
            // Settle the slot's accounting in full — resident bytes
            // plus any in-flight step's reservation (that step sees the
            // removal and leaves the settlement alone).
            inner.total_bytes = inner
                .total_bytes
                .saturating_sub(slot.accounted.load(Ordering::Relaxed));
            inner.counters.closed += 1;
            slot
        };
        // Wait for an in-flight step *outside* the manager lock, so one
        // slow step being closed never stalls the whole shard.
        let tokens = slot
            .cell
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .kv
            .tokens();
        if let Some(recorder) = &self.recorder {
            recorder.record(
                EventSeverity::Info,
                "session_close",
                format!("session={session} tokens={tokens}"),
            );
        }
        Ok(tokens)
    }

    /// Removes a session whose own step panicked mid-pass. The KV was
    /// already rolled back to the pre-step prefix, but a panic inside
    /// this session's append is grounds for distrust: the caller gets
    /// [`ServeError::Internal`] now and [`ServeError::UnknownSession`]
    /// afterwards, and must re-open and replay. Settles the slot's full
    /// accounting (reservation included) exactly once, mirroring
    /// [`close`](Self::close); the in-flight step sees the removal and
    /// leaves settlement alone.
    fn evict_poisoned(&self, session: u64, at: &'static str) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(slot) = inner.sessions.remove(&session) {
            inner.total_bytes = inner
                .total_bytes
                .saturating_sub(slot.accounted.load(Ordering::Relaxed));
            inner.counters.evicted_poisoned += 1;
            if let Some(recorder) = &self.recorder {
                recorder.record(
                    EventSeverity::Warn,
                    "session_evict",
                    format!("session={session} reason=poisoned at={at}"),
                );
            }
        }
    }

    /// Evicts every idle-timed-out session now, regardless of the
    /// amortization deadline (idle eviction also happens on open/step,
    /// but only once per sweep period). Returns how many were evicted.
    pub fn sweep(&self) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        self.evict_idle_locked(&mut inner, Instant::now())
    }

    /// Current counters and resident footprint.
    pub fn stats(&self) -> SessionStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        SessionStats {
            open_sessions: inner.sessions.len(),
            kv_bytes: inner.total_bytes,
            opened: inner.counters.opened,
            closed: inner.counters.closed,
            evicted_idle: inner.counters.evicted_idle,
            evicted_budget: inner.counters.evicted_budget,
            steps: inner.counters.steps,
            tokens: inner.counters.tokens,
            decode_batches: self.batcher.as_ref().map_or(0, DecodeBatcher::batches),
            decode_padded_cols: self.batcher.as_ref().map_or(0, DecodeBatcher::padded_cols),
            worker_panics: self.inline_panics.load(Ordering::Relaxed)
                + self
                    .batcher
                    .as_ref()
                    .map_or(0, DecodeBatcher::worker_panics),
            evicted_poisoned: inner.counters.evicted_poisoned,
            expired_steps: self
                .batcher
                .as_ref()
                .map_or(0, DecodeBatcher::expired_steps),
        }
    }

    /// Per-stage histograms for the decode path: `step` (end-to-end
    /// step latency, ns) plus the batcher's `decode_linger` /
    /// `decode_pass` (ns) and `decode_occupancy` (sessions per fused
    /// pass). Batcher stages are empty when batching is disabled.
    pub fn stage_snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        let mut stages = vec![("step", self.step_latency.snapshot())];
        match &self.batcher {
            Some(batcher) => stages.extend(batcher.stage_snapshots()),
            None => stages.extend([
                ("decode_linger", HistogramSnapshot::empty()),
                ("decode_pass", HistogramSnapshot::empty()),
                ("decode_occupancy", HistogramSnapshot::empty()),
            ]),
        }
        stages
    }

    /// The amortized idle scan: a no-op until the sweep deadline, so
    /// steady-state stepping never pays the O(sessions) walk under the
    /// map lock. Staleness is bounded by one sweep period on top of the
    /// idle timeout.
    fn maybe_evict_idle_locked(&self, inner: &mut Inner, now: Instant) {
        if now < inner.next_idle_sweep {
            return;
        }
        self.evict_idle_locked(inner, now);
    }

    /// Drops sessions idle past the timeout and re-arms the sweep
    /// deadline. A session whose lock is held (a step in flight) is by
    /// definition not idle and is skipped.
    fn evict_idle_locked(&self, inner: &mut Inner, now: Instant) -> usize {
        inner.next_idle_sweep = now + idle_sweep_period(self.config.idle_timeout);
        let mut victims = Vec::new();
        for (&id, slot) in &inner.sessions {
            let s = match slot.cell.try_lock() {
                Ok(s) => s,
                Err(TryLockError::WouldBlock) => continue, // mid-step: not idle
                // A poisoned cell means a caller-thread panic escaped
                // while holding the lock (every serving path catches,
                // so only foreign users of `Slot` can do this). The
                // state behind it was never half-mutated by *our* code;
                // recover and judge idleness normally.
                Err(TryLockError::Poisoned(p)) => p.into_inner(),
            };
            if now.duration_since(s.last_used) > self.config.idle_timeout {
                victims.push((id, slot.accounted.load(Ordering::Relaxed)));
            }
        }
        let n = victims.len();
        for (id, bytes) in victims {
            inner.sessions.remove(&id);
            inner.total_bytes = inner.total_bytes.saturating_sub(bytes);
            inner.counters.evicted_idle += 1;
            if let Some(recorder) = &self.recorder {
                recorder.record(
                    EventSeverity::Warn,
                    "session_evict",
                    format!("session={id} reason=idle"),
                );
            }
        }
        n
    }

    /// Evicts least-recently-used sessions (skipping `keep` and any
    /// mid-step session) until `growth` more bytes fit the budget or
    /// nothing evictable remains.
    fn evict_for_budget_locked(&self, inner: &mut Inner, keep: u64, growth: usize, _now: Instant) {
        let mut candidates: Vec<(u64, Instant, usize)> = Vec::new();
        for (&id, slot) in &inner.sessions {
            if id == keep {
                continue;
            }
            let s = match slot.cell.try_lock() {
                Ok(s) => s,
                // mid-step: stealing its state would corrupt it
                Err(TryLockError::WouldBlock) => continue,
                // recovered, not mid-step — evictable like any other
                Err(TryLockError::Poisoned(p)) => p.into_inner(),
            };
            candidates.push((id, s.last_used, slot.accounted.load(Ordering::Relaxed)));
        }
        candidates.sort_by_key(|&(_, used, _)| used);
        for (id, _, bytes) in candidates {
            if inner.total_bytes + growth <= self.config.max_kv_bytes {
                break;
            }
            inner.sessions.remove(&id);
            inner.total_bytes = inner.total_bytes.saturating_sub(bytes);
            inner.counters.evicted_budget += 1;
            if let Some(recorder) = &self.recorder {
                recorder.record(
                    EventSeverity::Warn,
                    "session_evict",
                    format!("session={id} reason=budget"),
                );
            }
        }
    }
}

/// How often the amortized idle scan runs: a quarter of the timeout
/// bounds eviction staleness at ~1.25× `idle_timeout` while keeping the
/// O(sessions) walk rare; the floor keeps a zero timeout from re-arming
/// the scan on every operation.
fn idle_sweep_period(idle_timeout: Duration) -> Duration {
    (idle_timeout / 4).max(Duration::from_millis(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{block_model, hidden};

    fn manager(config: SessionConfig) -> (SessionManager, Arc<PreparedModel>) {
        let (model, _) = block_model("s", 70);
        (SessionManager::new(config), Arc::new(model))
    }

    #[test]
    fn open_step_close_round_trip() {
        let (mgr, model) = manager(SessionConfig::default());
        let id = mgr.open(Arc::clone(&model)).expect("opened");
        assert!(mgr.contains(id));
        let (out, tokens, wl) = mgr.step(id, &hidden(16, 3, 0)).expect("stepped");
        assert_eq!(out.shape(), (16, 3));
        assert_eq!(tokens, 3);
        assert!(wl.mul > 0);
        let (_, tokens, _) = mgr.step(id, &hidden(16, 1, 1)).expect("stepped");
        assert_eq!(tokens, 4);
        let s = mgr.stats();
        assert_eq!(s.open_sessions, 1);
        assert_eq!(s.steps, 2);
        assert_eq!(s.tokens, 4);
        assert_eq!(s.kv_bytes, 2 * 2 * 16 * 4 * 4);
        assert_eq!(mgr.close(id).expect("closed"), 4);
        assert!(!mgr.contains(id));
        assert_eq!(mgr.stats().kv_bytes, 0);
    }

    #[test]
    fn unknown_closed_and_double_closed_sessions_error() {
        let (mgr, model) = manager(SessionConfig::default());
        assert!(matches!(
            mgr.step(999, &hidden(16, 1, 0)),
            Err(ServeError::UnknownSession { session: 999 })
        ));
        let id = mgr.open(model).expect("opened");
        mgr.close(id).expect("closed");
        assert!(matches!(
            mgr.step(id, &hidden(16, 1, 0)),
            Err(ServeError::UnknownSession { .. })
        ));
        assert!(matches!(
            mgr.close(id),
            Err(ServeError::UnknownSession { .. })
        ));
    }

    #[test]
    fn chain_models_cannot_open_sessions() {
        let mgr = SessionManager::new(SessionConfig::default());
        let chain = Arc::new(
            crate::PreparedModel::prepare(
                "chain",
                &[crate::LayerSpec::unbiased(
                    panacea_tensor::Matrix::<f32>::zeros(8, 16),
                )],
                &panacea_tensor::Matrix::<f32>::zeros(16, 4),
                crate::PrepareOptions::default(),
            )
            .expect("prepare"),
        );
        assert!(matches!(
            mgr.open(chain),
            Err(ServeError::PayloadKindMismatch {
                model_is_block: false,
                ..
            })
        ));
    }

    #[test]
    fn idle_sessions_are_evicted_and_step_errors_afterwards() {
        let (mgr, model) = manager(SessionConfig {
            idle_timeout: Duration::from_millis(20),
            ..SessionConfig::default()
        });
        let id = mgr.open(model).expect("opened");
        mgr.step(id, &hidden(16, 2, 0)).expect("stepped");
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(mgr.sweep(), 1);
        let s = mgr.stats();
        assert_eq!(s.evicted_idle, 1);
        assert_eq!(s.open_sessions, 0);
        assert_eq!(s.kv_bytes, 0, "evicted KV bytes must be released");
        assert!(matches!(
            mgr.step(id, &hidden(16, 1, 1)),
            Err(ServeError::UnknownSession { .. })
        ));
    }

    #[test]
    fn byte_budget_evicts_lru_idle_sessions_then_errors() {
        // bytes_per_token = 2 blocks × 2 (K+V) × 16 × 4 = 256 bytes.
        // Budget of 1024 holds 4 tokens total.
        let (mgr, model) = manager(SessionConfig {
            idle_timeout: Duration::from_secs(3600),
            max_kv_bytes: 1024,
            ..SessionConfig::default()
        });
        let a = mgr.open(Arc::clone(&model)).expect("opened");
        let b = mgr.open(Arc::clone(&model)).expect("opened");
        mgr.step(a, &hidden(16, 3, 0)).expect("fills 3 tokens");
        mgr.step(b, &hidden(16, 1, 1)).expect("fits exactly");
        // One more token does not fit; the LRU session (a) is evicted
        // to make room.
        mgr.step(b, &hidden(16, 1, 2))
            .expect("b grows after a dies");
        assert!(!mgr.contains(a), "LRU session survived the budget");
        assert!(mgr.contains(b));
        assert_eq!(mgr.stats().evicted_budget, 1);
        assert!(matches!(
            mgr.step(a, &hidden(16, 1, 3)),
            Err(ServeError::UnknownSession { .. })
        ));
        // A single step larger than the whole budget cannot be helped
        // by eviction.
        let c = mgr.open(model).expect("opened");
        assert!(matches!(
            mgr.step(c, &hidden(16, 5, 4)),
            Err(ServeError::KvBudgetExceeded { .. })
        ));
        // The failed reservation must not leak accounted bytes.
        assert_eq!(mgr.stats().kv_bytes, 2 * 256);
    }

    #[test]
    fn byte_accounting_survives_concurrent_step_close_churn() {
        // Steps racing closes and evictions must leave `kv_bytes`
        // exactly consistent: every session's bytes are settled once —
        // never leaked, never double-subtracted.
        let (mgr, model) = manager(SessionConfig::default());
        let mgr = std::sync::Arc::new(mgr);
        let mut threads = Vec::new();
        for t in 0..4u64 {
            let mgr = std::sync::Arc::clone(&mgr);
            let model = Arc::clone(&model);
            threads.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    let id = mgr.open(Arc::clone(&model)).expect("opened");
                    // Race a closer against the stepper on the same
                    // session half the time.
                    if (t + i) % 2 == 0 {
                        let mgr2 = std::sync::Arc::clone(&mgr);
                        let closer = std::thread::spawn(move || mgr2.close(id));
                        let _ = mgr.step(id, &hidden(16, 2, (t * 100 + i) as usize));
                        let _ = closer.join().expect("closer");
                        let _ = mgr.close(id); // second close may race too
                    } else {
                        mgr.step(id, &hidden(16, 3, i as usize)).expect("stepped");
                        // A failing step must roll its reservation back.
                        assert!(mgr.step(id, &hidden(15, 1, 0)).is_err());
                        mgr.close(id).expect("closed");
                    }
                }
            }));
        }
        for th in threads {
            th.join().expect("churn thread");
        }
        let s = mgr.stats();
        assert_eq!(s.open_sessions, 0, "sessions leaked");
        assert_eq!(
            s.kv_bytes, 0,
            "byte accounting drifted under concurrent churn"
        );
    }

    #[test]
    fn concurrent_batched_steps_are_bit_exact_and_share_fused_passes() {
        // Four sessions with *different* token streams step concurrently
        // through the continuous batcher. Every session's outputs must be
        // bit-identical to a solo causal recompute of its own stream, and
        // the batcher must actually fuse passes (occupancy > 1).
        let (model, blocks) = block_model("batched", 80);
        let model = Arc::new(model);
        let mgr = Arc::new(SessionManager::new(SessionConfig {
            max_decode_batch: 4,
            decode_max_wait: Duration::from_millis(100),
            ..SessionConfig::default()
        }));
        const SESSIONS: usize = 4;
        const STEPS: usize = 3;
        let barrier = Arc::new(std::sync::Barrier::new(SESSIONS));
        let mut threads = Vec::new();
        for t in 0..SESSIONS {
            let mgr = Arc::clone(&mgr);
            let model = Arc::clone(&model);
            let barrier = Arc::clone(&barrier);
            threads.push(std::thread::spawn(move || {
                let id = mgr.open(model).expect("opened");
                let stream = hidden(16, STEPS, 50 + t);
                let mut outs = Vec::new();
                barrier.wait();
                for c in 0..STEPS {
                    let (out, tokens, wl) = mgr
                        .step(id, &stream.submatrix(0, c, 16, 1))
                        .expect("stepped");
                    assert_eq!(tokens, c + 1);
                    assert!(wl.mul > 0);
                    outs.push(out);
                }
                mgr.close(id).expect("closed");
                (t, outs)
            }));
        }
        for th in threads {
            let (t, outs) = th.join().expect("session thread");
            let stream = hidden(16, STEPS, 50 + t);
            let mut expect = stream.clone();
            for b in &blocks {
                expect = b.forward_segments_causal(&expect, &[STEPS]).0;
            }
            for (c, out) in outs.iter().enumerate() {
                for r in 0..16 {
                    assert_eq!(
                        out[(r, 0)].to_bits(),
                        expect[(r, c)].to_bits(),
                        "batched step diverged from solo recompute (session {t})"
                    );
                }
            }
        }
        let s = mgr.stats();
        assert_eq!(s.steps, (SESSIONS * STEPS) as u64);
        assert!(s.decode_batches > 0, "no fused pass ran");
        assert!(
            s.decode_batch_occupancy() > 1.0,
            "concurrent sessions never shared a fused pass (occupancy {}, {} batches)",
            s.decode_batch_occupancy(),
            s.decode_batches
        );
    }

    #[test]
    fn disabling_the_batcher_runs_steps_inline() {
        let (mgr, model) = manager(SessionConfig {
            max_decode_batch: 1,
            ..SessionConfig::default()
        });
        let id = mgr.open(model).expect("opened");
        let (out, tokens, wl) = mgr.step(id, &hidden(16, 2, 5)).expect("stepped");
        assert_eq!(out.shape(), (16, 2));
        assert_eq!(tokens, 2);
        assert!(wl.mul > 0);
        let s = mgr.stats();
        assert_eq!(s.steps, 1);
        assert_eq!(s.decode_batches, 0, "inline mode must not run fused passes");
        assert_eq!(s.decode_batch_occupancy(), 0.0);
    }

    #[test]
    fn budget_filling_chunks_bypass_the_batcher_but_stay_exact() {
        // A prefill chunk as wide as the fused-pass budget would fill a
        // pass alone: it must run inline (no fused pass counted) while
        // narrower follow-up steps keep batching — and the outputs must
        // still match the causal recompute oracle.
        let (model, blocks) = block_model("wide", 81);
        let mgr = SessionManager::new(SessionConfig {
            max_decode_batch: 4,
            ..SessionConfig::default()
        });
        let id = mgr.open(Arc::new(model)).expect("opened");
        let stream = hidden(16, 5, 9);
        let (wide, tokens, _) = mgr
            .step(id, &stream.submatrix(0, 0, 16, 4))
            .expect("prefill");
        assert_eq!(tokens, 4);
        assert_eq!(
            mgr.stats().decode_batches,
            0,
            "budget-filling chunk went through the batcher"
        );
        let (narrow, tokens, _) = mgr.step(id, &stream.submatrix(0, 4, 16, 1)).expect("step");
        assert_eq!(tokens, 5);
        assert_eq!(mgr.stats().decode_batches, 1, "narrow step did not batch");
        let mut expect = stream.clone();
        for b in &blocks {
            expect = b.forward_segments_causal(&expect, &[5]).0;
        }
        for r in 0..16 {
            for c in 0..4 {
                assert_eq!(wide[(r, c)].to_bits(), expect[(r, c)].to_bits());
            }
            assert_eq!(narrow[(r, 0)].to_bits(), expect[(r, 4)].to_bits());
        }
    }

    #[test]
    fn invalid_steps_fail_before_reaching_a_fused_batch() {
        // A malformed step must error on its own thread (with its
        // reservation rolled back), leaving the batcher untouched.
        let (mgr, model) = manager(SessionConfig::default());
        let id = mgr.open(model).expect("opened");
        assert!(matches!(
            mgr.step(id, &hidden(15, 1, 0)),
            Err(ServeError::Shape { .. })
        ));
        let nan = Matrix::from_fn(16, 1, |_, _| f32::NAN);
        assert!(matches!(
            mgr.step(id, &nan),
            Err(ServeError::NonFiniteInput)
        ));
        let s = mgr.stats();
        assert_eq!(s.decode_batches, 0, "invalid steps entered the batcher");
        assert_eq!(s.kv_bytes, 0, "failed steps leaked reservations");
        // The session still works afterwards.
        assert!(mgr.step(id, &hidden(16, 1, 1)).is_ok());
    }

    #[test]
    fn idle_scan_is_amortized_but_sweep_is_immediate() {
        // With a long idle timeout the amortized deadline is far away:
        // a step on one session must not opportunistically evict another
        // expired-looking session before the sweep period elapses —
        // while an explicit sweep() always scans.
        let (mgr, model) = manager(SessionConfig {
            idle_timeout: Duration::from_secs(3600),
            ..SessionConfig::default()
        });
        let a = mgr.open(Arc::clone(&model)).expect("opened");
        for i in 0..50 {
            mgr.step(a, &hidden(16, 1, i)).expect("stepped");
        }
        assert_eq!(
            mgr.stats().evicted_idle,
            0,
            "steady-state stepping paid idle scans"
        );
        assert_eq!(mgr.sweep(), 0, "nothing is actually idle");
        assert!(mgr.contains(a));
    }

    #[test]
    fn step_outputs_match_stateless_causal_recompute() {
        let (mgr, model) = manager(SessionConfig::default());
        let (raw_model, blocks) = block_model("oracle", 70);
        assert_eq!(raw_model.in_features(), 16);
        let id = mgr.open(Arc::clone(&model)).expect("opened");
        let prefix = hidden(16, 5, 9);
        let mut expect = prefix.clone();
        for b in &blocks {
            expect = b.forward_segments_causal(&expect, &[5]).0;
        }
        let mut got = Vec::new();
        for c in 0..5 {
            let (out, _, _) = mgr
                .step(id, &prefix.submatrix(0, c, 16, 1))
                .expect("stepped");
            got.push(out);
        }
        for (c, out) in got.iter().enumerate() {
            for r in 0..16 {
                assert_eq!(
                    out[(r, 0)].to_bits(),
                    expect[(r, c)].to_bits(),
                    "session step diverged from causal recompute"
                );
            }
        }
    }
}
