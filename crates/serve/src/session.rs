//! Stateful decode sessions: per-sequence KV caches with lifecycle
//! management.
//!
//! A decode session owns one sequence's [`KvCache`] across a
//! transformer-block stack. The [`SessionManager`] is the
//! serving-layer owner of that state: it creates sessions
//! ([`open`](SessionManager::open)), advances them
//! ([`step`](SessionManager::step) — one KV-cached
//! [`PreparedModel::forward_decode`] call per step), and bounds their
//! footprint two ways:
//!
//! * **idle eviction** — a session untouched for
//!   [`SessionConfig::idle_timeout`] is dropped on the next manager
//!   operation (or an explicit [`sweep`](SessionManager::sweep));
//! * **byte budget** — the total resident KV bytes across sessions may
//!   not exceed [`SessionConfig::max_kv_bytes`]; a step that would
//!   overflow first evicts least-recently-used *idle* sessions and, if
//!   the budget still cannot fit, fails with
//!   [`ServeError::KvBudgetExceeded`] instead of growing unboundedly.
//!
//! Steps execute on the calling thread (a decode step is a latency-bound
//! O(prefix) pass over one new token, not a batching candidate), and a
//! session's steps are serialized by its own lock while distinct
//! sessions run concurrently. Stepping a closed or evicted session
//! fails with [`ServeError::UnknownSession`] — the caller re-opens and
//! replays its prefix.
//!
//! Session state is **never** admissible to a response cache: a step's
//! output depends on the KV prefix, not just its payload, so replaying
//! a cached step would corrupt (or lie about) session state. The
//! gateway's `RequestCache` is reachable only from the stateless
//! request path; this module has no cache access at all.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use panacea_block::KvCache;
use panacea_core::Workload;
use panacea_tensor::Matrix;

use crate::model::PreparedModel;
use crate::ServeError;

/// Lifecycle and footprint knobs for a [`SessionManager`].
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// A session untouched this long is evicted by the next manager
    /// operation (or an explicit [`SessionManager::sweep`]).
    pub idle_timeout: Duration,
    /// Total resident KV bytes allowed across all sessions.
    pub max_kv_bytes: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            idle_timeout: Duration::from_secs(60),
            max_kv_bytes: 64 << 20,
        }
    }
}

/// Point-in-time session counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions currently resident.
    pub open_sessions: usize,
    /// KV bytes currently resident across all sessions.
    pub kv_bytes: usize,
    /// Sessions ever opened.
    pub opened: u64,
    /// Sessions closed by their caller.
    pub closed: u64,
    /// Sessions evicted by the idle timeout.
    pub evicted_idle: u64,
    /// Sessions evicted to make room under the byte budget.
    pub evicted_budget: u64,
    /// Decode steps executed.
    pub steps: u64,
    /// Tokens decoded across all steps.
    pub tokens: u64,
}

/// Source of process-unique session ids; 0 is never issued.
static NEXT_SESSION: AtomicU64 = AtomicU64::new(1);

#[derive(Debug)]
struct Session {
    model: Arc<PreparedModel>,
    kv: KvCache,
    last_used: Instant,
}

/// One session's map entry: the per-session lock plus the metadata the
/// manager reads without taking it.
#[derive(Debug)]
struct Slot {
    cell: Mutex<Session>,
    bytes_per_token: usize,
    /// Bytes this slot currently contributes to the manager's
    /// `total_bytes` — resident KV plus any reservation for a step in
    /// flight. Mutated and read only under the manager's inner lock
    /// (hence `Relaxed`); it exists so removal (close/eviction) can
    /// settle a slot's accounting exactly once without touching the
    /// per-session lock, whatever a concurrent step is doing.
    accounted: AtomicUsize,
}

#[derive(Debug, Default)]
struct Counters {
    opened: u64,
    closed: u64,
    evicted_idle: u64,
    evicted_budget: u64,
    steps: u64,
    tokens: u64,
}

#[derive(Debug)]
struct Inner {
    sessions: HashMap<u64, Arc<Slot>>,
    /// Sum of resident KV bytes, including reservations for in-flight
    /// steps.
    total_bytes: usize,
    counters: Counters,
}

/// Owner of decode-session state and lifecycle. See the module docs.
#[derive(Debug)]
pub struct SessionManager {
    config: SessionConfig,
    inner: Mutex<Inner>,
}

impl SessionManager {
    /// An empty manager enforcing `config`.
    pub fn new(config: SessionConfig) -> Self {
        SessionManager {
            config,
            inner: Mutex::new(Inner {
                sessions: HashMap::new(),
                total_bytes: 0,
                counters: Counters::default(),
            }),
        }
    }

    /// The bounds being enforced.
    pub fn config(&self) -> SessionConfig {
        self.config
    }

    /// Opens a session on a transformer-block model, returning its
    /// process-unique id. The session starts with an empty KV cache;
    /// the prefix (prompt) arrives through [`step`](Self::step) calls,
    /// which accept any column chunking.
    ///
    /// # Errors
    ///
    /// [`ServeError::PayloadKindMismatch`] when `model` is a linear
    /// chain (there is no attention state to cache).
    pub fn open(&self, model: Arc<PreparedModel>) -> Result<u64, ServeError> {
        let kv = model.new_kv_cache()?;
        let bytes_per_token = kv.bytes_per_token();
        let id = NEXT_SESSION.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot {
            cell: Mutex::new(Session {
                model,
                kv,
                last_used: Instant::now(),
            }),
            bytes_per_token,
            accounted: AtomicUsize::new(0),
        });
        let mut inner = self.inner.lock().expect("session map poisoned");
        self.evict_idle_locked(&mut inner, Instant::now());
        inner.sessions.insert(id, slot);
        inner.counters.opened += 1;
        Ok(id)
    }

    /// Whether `session` is currently resident — how a sharded front
    /// end finds the manager holding a session's KV state.
    pub fn contains(&self, session: u64) -> bool {
        self.inner
            .lock()
            .expect("session map poisoned")
            .sessions
            .contains_key(&session)
    }

    /// Advances a session by `hidden` (`d_model × t_new` new tokens,
    /// any chunking), returning the new tokens' output hidden states,
    /// the session's total token count afterwards, and the step's
    /// workload. Bit-identical to a full causal recompute of the whole
    /// prefix — see [`PreparedModel::forward_decode`].
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if the session was never opened,
    /// was closed, or has been evicted;
    /// [`ServeError::KvBudgetExceeded`] if the step cannot fit the byte
    /// budget even after evicting idle sessions; and the input-contract
    /// errors of [`PreparedModel::forward_decode`].
    pub fn step(
        &self,
        session: u64,
        hidden: &Matrix<f32>,
    ) -> Result<(Matrix<f32>, usize, Workload), ServeError> {
        let now = Instant::now();
        let (slot, growth) = {
            let mut inner = self.inner.lock().expect("session map poisoned");
            self.evict_idle_locked(&mut inner, now);
            let slot = Arc::clone(
                inner
                    .sessions
                    .get(&session)
                    .ok_or(ServeError::UnknownSession { session })?,
            );
            let growth = slot.bytes_per_token.saturating_mul(hidden.cols());
            let session_bytes = slot.accounted.load(Ordering::Relaxed);
            // A step this session could never fit even alone must not
            // evict anyone else on its doomed way to the error.
            if session_bytes + growth > self.config.max_kv_bytes {
                return Err(ServeError::KvBudgetExceeded {
                    needed: session_bytes + growth,
                    budget: self.config.max_kv_bytes,
                });
            }
            if inner.total_bytes + growth > self.config.max_kv_bytes {
                self.evict_for_budget_locked(&mut inner, session, growth, now);
            }
            if inner.total_bytes + growth > self.config.max_kv_bytes {
                return Err(ServeError::KvBudgetExceeded {
                    needed: inner.total_bytes + growth,
                    budget: self.config.max_kv_bytes,
                });
            }
            // Reserve the growth while the step runs, so concurrent
            // steps cannot jointly overshoot the budget. The slot's
            // `accounted` carries the reservation, so a removal racing
            // this step settles it exactly once.
            slot.accounted.fetch_add(growth, Ordering::Relaxed);
            inner.total_bytes += growth;
            (slot, growth)
        };

        let result = {
            let mut s = slot.cell.lock().expect("session poisoned");
            let model = Arc::clone(&s.model);
            let r = model.forward_decode(hidden, &mut s.kv);
            s.last_used = Instant::now();
            r.map(|(out, wl)| (out, s.kv.tokens(), wl))
        };

        let mut inner = self.inner.lock().expect("session map poisoned");
        match &result {
            // On success the reservation simply *becomes* the resident
            // bytes — nothing to adjust. If the session was removed
            // mid-step (close or eviction), the removal already settled
            // the slot's whole `accounted` (reservation included), and
            // the orphaned cache frees when the last Arc goes.
            Ok((_, _, _)) => {
                inner.counters.steps += 1;
                inner.counters.tokens += hidden.cols() as u64;
            }
            // A failed step grew nothing: release the reservation —
            // unless a concurrent removal already settled it.
            Err(_) => {
                if inner.sessions.contains_key(&session) {
                    slot.accounted.fetch_sub(growth, Ordering::Relaxed);
                    inner.total_bytes = inner.total_bytes.saturating_sub(growth);
                }
            }
        }
        result
    }

    /// Closes a session, freeing its KV state; returns the tokens it
    /// had decoded.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] if it does not exist (never
    /// opened, already closed, or evicted).
    pub fn close(&self, session: u64) -> Result<usize, ServeError> {
        let slot = {
            let mut inner = self.inner.lock().expect("session map poisoned");
            let slot = inner
                .sessions
                .remove(&session)
                .ok_or(ServeError::UnknownSession { session })?;
            // Settle the slot's accounting in full — resident bytes
            // plus any in-flight step's reservation (that step sees the
            // removal and leaves the settlement alone).
            inner.total_bytes = inner
                .total_bytes
                .saturating_sub(slot.accounted.load(Ordering::Relaxed));
            inner.counters.closed += 1;
            slot
        };
        // Wait for an in-flight step *outside* the manager lock, so one
        // slow step being closed never stalls the whole shard.
        let tokens = slot.cell.lock().expect("session poisoned").kv.tokens();
        Ok(tokens)
    }

    /// Evicts every idle-timed-out session now (idle eviction also
    /// happens opportunistically on open/step). Returns how many were
    /// evicted.
    pub fn sweep(&self) -> usize {
        let mut inner = self.inner.lock().expect("session map poisoned");
        self.evict_idle_locked(&mut inner, Instant::now())
    }

    /// Current counters and resident footprint.
    pub fn stats(&self) -> SessionStats {
        let inner = self.inner.lock().expect("session map poisoned");
        SessionStats {
            open_sessions: inner.sessions.len(),
            kv_bytes: inner.total_bytes,
            opened: inner.counters.opened,
            closed: inner.counters.closed,
            evicted_idle: inner.counters.evicted_idle,
            evicted_budget: inner.counters.evicted_budget,
            steps: inner.counters.steps,
            tokens: inner.counters.tokens,
        }
    }

    /// Drops sessions idle past the timeout. A session whose lock is
    /// held (a step in flight) is by definition not idle and is
    /// skipped.
    fn evict_idle_locked(&self, inner: &mut Inner, now: Instant) -> usize {
        let mut victims = Vec::new();
        for (&id, slot) in &inner.sessions {
            let Ok(s) = slot.cell.try_lock() else {
                continue; // mid-step: not idle
            };
            if now.duration_since(s.last_used) > self.config.idle_timeout {
                victims.push((id, slot.accounted.load(Ordering::Relaxed)));
            }
        }
        let n = victims.len();
        for (id, bytes) in victims {
            inner.sessions.remove(&id);
            inner.total_bytes = inner.total_bytes.saturating_sub(bytes);
            inner.counters.evicted_idle += 1;
        }
        n
    }

    /// Evicts least-recently-used sessions (skipping `keep` and any
    /// mid-step session) until `growth` more bytes fit the budget or
    /// nothing evictable remains.
    fn evict_for_budget_locked(&self, inner: &mut Inner, keep: u64, growth: usize, _now: Instant) {
        let mut candidates: Vec<(u64, Instant, usize)> = Vec::new();
        for (&id, slot) in &inner.sessions {
            if id == keep {
                continue;
            }
            let Ok(s) = slot.cell.try_lock() else {
                continue; // mid-step: stealing its state would corrupt it
            };
            candidates.push((id, s.last_used, slot.accounted.load(Ordering::Relaxed)));
        }
        candidates.sort_by_key(|&(_, used, _)| used);
        for (id, _, bytes) in candidates {
            if inner.total_bytes + growth <= self.config.max_kv_bytes {
                break;
            }
            inner.sessions.remove(&id);
            inner.total_bytes = inner.total_bytes.saturating_sub(bytes);
            inner.counters.evicted_budget += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{block_model, hidden};

    fn manager(config: SessionConfig) -> (SessionManager, Arc<PreparedModel>) {
        let (model, _) = block_model("s", 70);
        (SessionManager::new(config), Arc::new(model))
    }

    #[test]
    fn open_step_close_round_trip() {
        let (mgr, model) = manager(SessionConfig::default());
        let id = mgr.open(Arc::clone(&model)).expect("opened");
        assert!(mgr.contains(id));
        let (out, tokens, wl) = mgr.step(id, &hidden(16, 3, 0)).expect("stepped");
        assert_eq!(out.shape(), (16, 3));
        assert_eq!(tokens, 3);
        assert!(wl.mul > 0);
        let (_, tokens, _) = mgr.step(id, &hidden(16, 1, 1)).expect("stepped");
        assert_eq!(tokens, 4);
        let s = mgr.stats();
        assert_eq!(s.open_sessions, 1);
        assert_eq!(s.steps, 2);
        assert_eq!(s.tokens, 4);
        assert_eq!(s.kv_bytes, 2 * 2 * 16 * 4 * 4);
        assert_eq!(mgr.close(id).expect("closed"), 4);
        assert!(!mgr.contains(id));
        assert_eq!(mgr.stats().kv_bytes, 0);
    }

    #[test]
    fn unknown_closed_and_double_closed_sessions_error() {
        let (mgr, model) = manager(SessionConfig::default());
        assert!(matches!(
            mgr.step(999, &hidden(16, 1, 0)),
            Err(ServeError::UnknownSession { session: 999 })
        ));
        let id = mgr.open(model).expect("opened");
        mgr.close(id).expect("closed");
        assert!(matches!(
            mgr.step(id, &hidden(16, 1, 0)),
            Err(ServeError::UnknownSession { .. })
        ));
        assert!(matches!(
            mgr.close(id),
            Err(ServeError::UnknownSession { .. })
        ));
    }

    #[test]
    fn chain_models_cannot_open_sessions() {
        let mgr = SessionManager::new(SessionConfig::default());
        let chain = Arc::new(
            crate::PreparedModel::prepare(
                "chain",
                &[crate::LayerSpec::unbiased(
                    panacea_tensor::Matrix::<f32>::zeros(8, 16),
                )],
                &panacea_tensor::Matrix::<f32>::zeros(16, 4),
                crate::PrepareOptions::default(),
            )
            .expect("prepare"),
        );
        assert!(matches!(
            mgr.open(chain),
            Err(ServeError::PayloadKindMismatch {
                model_is_block: false,
                ..
            })
        ));
    }

    #[test]
    fn idle_sessions_are_evicted_and_step_errors_afterwards() {
        let (mgr, model) = manager(SessionConfig {
            idle_timeout: Duration::from_millis(20),
            ..SessionConfig::default()
        });
        let id = mgr.open(model).expect("opened");
        mgr.step(id, &hidden(16, 2, 0)).expect("stepped");
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(mgr.sweep(), 1);
        let s = mgr.stats();
        assert_eq!(s.evicted_idle, 1);
        assert_eq!(s.open_sessions, 0);
        assert_eq!(s.kv_bytes, 0, "evicted KV bytes must be released");
        assert!(matches!(
            mgr.step(id, &hidden(16, 1, 1)),
            Err(ServeError::UnknownSession { .. })
        ));
    }

    #[test]
    fn byte_budget_evicts_lru_idle_sessions_then_errors() {
        // bytes_per_token = 2 blocks × 2 (K+V) × 16 × 4 = 256 bytes.
        // Budget of 1024 holds 4 tokens total.
        let (mgr, model) = manager(SessionConfig {
            idle_timeout: Duration::from_secs(3600),
            max_kv_bytes: 1024,
        });
        let a = mgr.open(Arc::clone(&model)).expect("opened");
        let b = mgr.open(Arc::clone(&model)).expect("opened");
        mgr.step(a, &hidden(16, 3, 0)).expect("fills 3 tokens");
        mgr.step(b, &hidden(16, 1, 1)).expect("fits exactly");
        // One more token does not fit; the LRU session (a) is evicted
        // to make room.
        mgr.step(b, &hidden(16, 1, 2))
            .expect("b grows after a dies");
        assert!(!mgr.contains(a), "LRU session survived the budget");
        assert!(mgr.contains(b));
        assert_eq!(mgr.stats().evicted_budget, 1);
        assert!(matches!(
            mgr.step(a, &hidden(16, 1, 3)),
            Err(ServeError::UnknownSession { .. })
        ));
        // A single step larger than the whole budget cannot be helped
        // by eviction.
        let c = mgr.open(model).expect("opened");
        assert!(matches!(
            mgr.step(c, &hidden(16, 5, 4)),
            Err(ServeError::KvBudgetExceeded { .. })
        ));
        // The failed reservation must not leak accounted bytes.
        assert_eq!(mgr.stats().kv_bytes, 2 * 256);
    }

    #[test]
    fn byte_accounting_survives_concurrent_step_close_churn() {
        // Steps racing closes and evictions must leave `kv_bytes`
        // exactly consistent: every session's bytes are settled once —
        // never leaked, never double-subtracted.
        let (mgr, model) = manager(SessionConfig::default());
        let mgr = std::sync::Arc::new(mgr);
        let mut threads = Vec::new();
        for t in 0..4u64 {
            let mgr = std::sync::Arc::clone(&mgr);
            let model = Arc::clone(&model);
            threads.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    let id = mgr.open(Arc::clone(&model)).expect("opened");
                    // Race a closer against the stepper on the same
                    // session half the time.
                    if (t + i) % 2 == 0 {
                        let mgr2 = std::sync::Arc::clone(&mgr);
                        let closer = std::thread::spawn(move || mgr2.close(id));
                        let _ = mgr.step(id, &hidden(16, 2, (t * 100 + i) as usize));
                        let _ = closer.join().expect("closer");
                        let _ = mgr.close(id); // second close may race too
                    } else {
                        mgr.step(id, &hidden(16, 3, i as usize)).expect("stepped");
                        // A failing step must roll its reservation back.
                        assert!(mgr.step(id, &hidden(15, 1, 0)).is_err());
                        mgr.close(id).expect("closed");
                    }
                }
            }));
        }
        for th in threads {
            th.join().expect("churn thread");
        }
        let s = mgr.stats();
        assert_eq!(s.open_sessions, 0, "sessions leaked");
        assert_eq!(
            s.kv_bytes, 0,
            "byte accounting drifted under concurrent churn"
        );
    }

    #[test]
    fn step_outputs_match_stateless_causal_recompute() {
        let (mgr, model) = manager(SessionConfig::default());
        let (raw_model, blocks) = block_model("oracle", 70);
        assert_eq!(raw_model.in_features(), 16);
        let id = mgr.open(Arc::clone(&model)).expect("opened");
        let prefix = hidden(16, 5, 9);
        let mut expect = prefix.clone();
        for b in &blocks {
            expect = b.forward_segments_causal(&expect, &[5]).0;
        }
        let mut got = Vec::new();
        for c in 0..5 {
            let (out, _, _) = mgr
                .step(id, &prefix.submatrix(0, c, 16, 1))
                .expect("stepped");
            got.push(out);
        }
        for (c, out) in got.iter().enumerate() {
            for r in 0..16 {
                assert_eq!(
                    out[(r, 0)].to_bits(),
                    expect[(r, c)].to_bits(),
                    "session step diverged from causal recompute"
                );
            }
        }
    }
}
