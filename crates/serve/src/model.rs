//! Prepared models and the registry that shares them across workers.
//!
//! Preparation — weight quantization, SBR slicing, activation calibration,
//! zero-point folding, requantizer construction — is the expensive,
//! one-time half of the Panacea inference flow. A [`PreparedModel`] runs
//! it exactly once per model and is then immutable, so the runtime shares
//! it across worker threads behind an [`Arc`] and every request pays only
//! the cheap half: one AQS-GEMM chain over its activation columns.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use panacea_bitslice::VECTOR_LEN;
use panacea_core::pipeline::{pad_cols_to_vector_len, run_coalesced, QuantizedLinear};
use panacea_core::Workload;
use panacea_models::engine::CapturedLayer;
use panacea_quant::dbs::DbsConfig;
use panacea_quant::{ActivationCalibrator, LayerQuantConfig, Quantizer};
use panacea_tensor::Matrix;

use crate::ServeError;

/// One float layer of a model to prepare: weights `M × K` and a bias of
/// length `M`.
#[derive(Debug, Clone)]
pub struct LayerSpec {
    /// Weight matrix (`M × K`).
    pub weight: Matrix<f32>,
    /// Bias (`M` entries).
    pub bias: Vec<f32>,
}

impl LayerSpec {
    /// A layer with a zero bias.
    pub fn unbiased(weight: Matrix<f32>) -> Self {
        let bias = vec![0.0; weight.rows()];
        LayerSpec { weight, bias }
    }
}

/// Quantization knobs applied during preparation.
#[derive(Debug, Clone, Copy)]
pub struct PrepareOptions {
    /// Weight bit-width (SBR format family, e.g. 4 or 7).
    pub w_bits: u8,
    /// Apply zero-point manipulation during calibration.
    pub zpm: bool,
    /// Apply distribution-based bit-slicing during calibration.
    pub dbs: bool,
}

impl Default for PrepareOptions {
    fn default() -> Self {
        PrepareOptions {
            w_bits: 7,
            zpm: true,
            dbs: true,
        }
    }
}

/// A fully prepared linear chain: every layer's weights are sliced, every
/// activation format calibrated, and adjacent layers are glued by
/// requantizers so codes flow end to end without leaving the integer
/// domain.
#[derive(Debug, Clone)]
pub struct PreparedModel {
    name: String,
    /// Process-unique preparation identity — see
    /// [`instance_id`](Self::instance_id).
    instance: u64,
    layers: Vec<QuantizedLinear>,
    input_cfg: LayerQuantConfig,
    in_features: usize,
    out_features: usize,
}

/// Source of [`PreparedModel::instance_id`] values; 0 is never issued.
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

impl PreparedModel {
    /// Prepares a linear chain from float layers.
    ///
    /// `calibration` is a `K × N` activation sample for the first layer's
    /// input; later layers are calibrated on the float reference
    /// intermediates it induces (`W·x + b` per layer), mirroring how PTQ
    /// calibration observes real intermediate tensors.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::EmptyModel`] for zero layers,
    /// [`ServeError::Shape`] if adjacent layers disagree on width or the
    /// calibration sample has the wrong feature count, and forwards
    /// quantization failures as [`ServeError::Pipeline`].
    pub fn prepare(
        name: impl Into<String>,
        layers: &[LayerSpec],
        calibration: &Matrix<f32>,
        opts: PrepareOptions,
    ) -> Result<Self, ServeError> {
        let name = name.into();
        let Some(first) = layers.first() else {
            return Err(ServeError::EmptyModel { model: name });
        };
        if calibration.rows() != first.weight.cols() {
            return Err(ServeError::Shape {
                expected: first.weight.cols(),
                actual: calibration.rows(),
            });
        }
        for pair in layers.windows(2) {
            if pair[1].weight.cols() != pair[0].weight.rows() {
                return Err(ServeError::Shape {
                    expected: pair[0].weight.rows(),
                    actual: pair[1].weight.cols(),
                });
            }
        }
        // The PE array emits output rows in vectors of VECTOR_LEN, so
        // every layer's M must align; catching it here turns a worker
        // panic at forward time into a preparation error.
        for spec in layers {
            if spec.weight.rows() % VECTOR_LEN != 0 {
                return Err(ServeError::UnalignedRows {
                    rows: spec.weight.rows(),
                });
            }
        }

        // Calibrate every layer input on the float reference chain.
        let calibrate = |x: &Matrix<f32>| {
            let mut cal = ActivationCalibrator::new(8).with_zpm(opts.zpm);
            if opts.dbs {
                cal = cal.with_dbs(DbsConfig::default());
            }
            cal.observe(x);
            cal.finalize()
        };
        let mut configs = Vec::with_capacity(layers.len());
        let mut x = calibration.clone();
        for spec in layers {
            configs.push(calibrate(&x));
            let mut next = spec.weight.gemm_f32(&x).map_err(|_| ServeError::Shape {
                expected: spec.weight.cols(),
                actual: x.rows(),
            })?;
            for m in 0..next.rows() {
                for n in 0..next.cols() {
                    next[(m, n)] += spec.bias[m];
                }
            }
            x = next;
        }

        let mut prepared = Vec::with_capacity(layers.len());
        for (i, spec) in layers.iter().enumerate() {
            let mut layer =
                QuantizedLinear::prepare(&spec.weight, &spec.bias, opts.w_bits, configs[i])
                    .map_err(ServeError::Pipeline)?;
            if i + 1 < layers.len() {
                layer = layer
                    .with_output(configs[i + 1])
                    .map_err(ServeError::Pipeline)?;
            }
            prepared.push(layer);
        }
        Ok(PreparedModel {
            name,
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            input_cfg: configs[0],
            in_features: first.weight.cols(),
            out_features: layers.last().expect("non-empty").weight.rows(),
            layers: prepared,
        })
    }

    /// Prepares a single-layer model from a [`CapturedLayer`] recorded by
    /// the transformer engine, calibrated on the layer's real captured
    /// input.
    ///
    /// # Errors
    ///
    /// Same conditions as [`prepare`](Self::prepare).
    pub fn from_capture(capture: &CapturedLayer, opts: PrepareOptions) -> Result<Self, ServeError> {
        PreparedModel::prepare(
            capture.name.clone(),
            &[LayerSpec::unbiased(capture.weight.clone())],
            &capture.input,
            opts,
        )
    }

    /// The model's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A process-unique id minted per [`prepare`](Self::prepare) call.
    ///
    /// Two models with equal ids are guaranteed bit-identical in their
    /// outputs (clones share the id and the preparation is
    /// deterministic), while a *re-preparation* — even of the same
    /// weights under the same name — gets a fresh id. This is the
    /// identity a response cache must key on: registry names can be
    /// re-bound to new models, names cannot.
    pub fn instance_id(&self) -> u64 {
        self.instance
    }

    /// Features per input column (`K` of the first layer).
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Rows of the output accumulator (`M` of the last layer).
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Number of prepared layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The activation format requests must quantize into.
    pub fn input_config(&self) -> &LayerQuantConfig {
        &self.input_cfg
    }

    /// The scale converting final accumulators to floats.
    pub fn output_scale(&self) -> f64 {
        self.layers.last().expect("non-empty").accumulator_scale()
    }

    /// Quantizes a float input (`K × N`) into request codes.
    pub fn quantize(&self, x: &Matrix<f32>) -> Matrix<i32> {
        self.input_cfg.quantizer.quantize_matrix(x)
    }

    /// Checks a request's codes against this model's input contract.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Shape`] on a feature-count mismatch,
    /// [`ServeError::EmptyRequest`] for zero columns, and
    /// [`ServeError::CodesOutOfRange`] if any code exceeds the calibrated
    /// format.
    pub fn validate(&self, codes: &Matrix<i32>) -> Result<(), ServeError> {
        if codes.rows() != self.in_features {
            return Err(ServeError::Shape {
                expected: self.in_features,
                actual: codes.rows(),
            });
        }
        if codes.cols() == 0 {
            return Err(ServeError::EmptyRequest);
        }
        if !self.input_cfg.codes_in_range(codes) {
            return Err(ServeError::CodesOutOfRange {
                max: self.input_cfg.max_code(),
            });
        }
        Ok(())
    }

    /// Runs the full chain on already-quantized codes (`K × N`), returning
    /// the final integer accumulators and the summed workload.
    ///
    /// The input is zero-padded up to the PE array's vector width and the
    /// padding trimmed from the output, so any column count is accepted;
    /// the padded columns are wasted work a wider batch would reclaim.
    ///
    /// # Panics
    ///
    /// Panics if `codes` violates the input contract (use
    /// [`validate`](Self::validate) first — the runtime does).
    pub fn forward_codes(&self, codes: &Matrix<i32>) -> (Matrix<i32>, Workload) {
        // Pad once at entry (skipping the copy when already aligned — the
        // common case for a well-coalesced batch); every layer preserves N.
        let (padded, pad);
        let input = if codes.cols().is_multiple_of(VECTOR_LEN) {
            pad = 0;
            codes
        } else {
            (padded, pad) = pad_cols_to_vector_len(codes);
            &padded
        };
        let mut wl = Workload::default();
        let last = self.layers.len() - 1;
        let mut x: Option<Matrix<i32>> = None;
        for layer in &self.layers[..last] {
            let (next, w) = layer.forward_codes(x.as_ref().unwrap_or(input));
            wl = wl.merged(&w);
            x = Some(next);
        }
        let (acc, w) = self.layers[last].forward(x.as_ref().unwrap_or(input));
        let acc = if pad == 0 {
            acc
        } else {
            acc.submatrix(0, 0, acc.rows(), acc.cols() - pad)
        };
        (acc, wl.merged(&w))
    }

    /// Runs the chain on several requests' codes at once: their columns
    /// are coalesced into one wide GEMM `N` dimension, executed in a
    /// single pass, and split back per request — bit-identical to running
    /// each request alone. This is the batched entry point the runtime's
    /// batch executor drives.
    ///
    /// # Panics
    ///
    /// Panics if the requests disagree on the feature dimension or
    /// violate the input contract (the runtime validates at submission).
    pub fn forward_batch(&self, requests: &[&Matrix<i32>]) -> (Vec<Matrix<i32>>, Workload) {
        run_coalesced(requests, |stacked| self.forward_codes(stacked))
    }

    /// Float-in/float-out convenience path (quantize, run, dequantize).
    pub fn forward_f32(&self, x: &Matrix<f32>) -> (Matrix<f32>, Workload) {
        let (acc, wl) = self.forward_codes(&self.quantize(x));
        let s = self.output_scale();
        (acc.map(|&v| (f64::from(v) * s) as f32), wl)
    }
}

/// A concurrent name → [`PreparedModel`] map shared by every worker.
///
/// Models are immutable once inserted; lookups hand out cheap [`Arc`]
/// clones, so a worker mid-batch never blocks registration of new models.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<PreparedModel>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Registers a prepared model under its name, returning the shared
    /// handle. Re-registering a name replaces the model for *new*
    /// requests; in-flight batches keep the handle they resolved.
    pub fn insert(&self, model: PreparedModel) -> Arc<PreparedModel> {
        self.insert_shared(Arc::new(model))
    }

    /// Registers an already-shared prepared model without cloning its
    /// weights — how a shard router gives every shard's registry the
    /// *same* prepared instance, so N shards cost one preparation and
    /// one copy of the sliced weights.
    pub fn insert_shared(&self, model: Arc<PreparedModel>) -> Arc<PreparedModel> {
        self.models
            .write()
            .expect("registry lock poisoned")
            .insert(model.name().to_string(), Arc::clone(&model));
        model
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<Arc<PreparedModel>> {
        self.models
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .models
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().expect("registry lock poisoned").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panacea_tensor::dist::DistributionKind;

    fn spec_chain(seed: u64, dims: &[usize]) -> (Vec<LayerSpec>, Matrix<f32>) {
        let mut rng = panacea_tensor::seeded_rng(seed);
        let layers: Vec<LayerSpec> = dims
            .windows(2)
            .map(|d| {
                let w = DistributionKind::Gaussian {
                    mean: 0.0,
                    std: 0.05,
                }
                .sample_matrix(d[1], d[0], &mut rng);
                LayerSpec::unbiased(w)
            })
            .collect();
        let calib = DistributionKind::TransformerAct {
            core_mean: 0.1,
            core_std: 0.4,
            pos_scale: 8.0,
            neg_scale: 5.0,
            outlier_frac: 0.02,
        }
        .sample_matrix(dims[0], 24, &mut rng);
        (layers, calib)
    }

    #[test]
    fn prepare_builds_requant_chain() {
        let (layers, calib) = spec_chain(1, &[32, 16, 8]);
        let m = PreparedModel::prepare("mlp", &layers, &calib, PrepareOptions::default())
            .expect("prepare");
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.in_features(), 32);
        assert_eq!(m.out_features(), 8);
        let codes = m.quantize(&calib);
        assert!(m.validate(&codes).is_ok());
        let (acc, wl) = m.forward_codes(&codes);
        assert_eq!(acc.shape(), (8, 24));
        assert!(wl.mul > 0);
    }

    #[test]
    fn forward_is_deterministic_across_clones() {
        let (layers, calib) = spec_chain(2, &[16, 8]);
        let m = PreparedModel::prepare("m", &layers, &calib, PrepareOptions::default())
            .expect("prepare");
        let codes = m.quantize(&calib);
        let (a, _) = m.forward_codes(&codes);
        let (b, _) = m.clone().forward_codes(&codes);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_model_rejected() {
        let calib = Matrix::<f32>::zeros(4, 4);
        let err =
            PreparedModel::prepare("none", &[], &calib, PrepareOptions::default()).unwrap_err();
        assert!(matches!(err, ServeError::EmptyModel { .. }));
    }

    #[test]
    fn shape_mismatches_rejected() {
        let (mut layers, calib) = spec_chain(3, &[16, 8, 4]);
        // Break the chain: second layer expects 8 features, give it 6.
        layers[1].weight = Matrix::<f32>::zeros(4, 6);
        layers[1].bias = vec![0.0; 4];
        assert!(matches!(
            PreparedModel::prepare("bad", &layers, &calib, PrepareOptions::default()),
            Err(ServeError::Shape {
                expected: 8,
                actual: 6
            })
        ));
        // Wrong calibration width.
        let (layers, _) = spec_chain(4, &[16, 8]);
        let bad_calib = Matrix::<f32>::zeros(9, 4);
        assert!(matches!(
            PreparedModel::prepare("bad2", &layers, &bad_calib, PrepareOptions::default()),
            Err(ServeError::Shape {
                expected: 16,
                actual: 9
            })
        ));
    }

    #[test]
    fn validate_enforces_request_contract() {
        let (layers, calib) = spec_chain(5, &[16, 8]);
        let m = PreparedModel::prepare("m", &layers, &calib, PrepareOptions::default())
            .expect("prepare");
        assert!(matches!(
            m.validate(&Matrix::<i32>::zeros(15, 2)),
            Err(ServeError::Shape {
                expected: 16,
                actual: 15
            })
        ));
        assert!(matches!(
            m.validate(&Matrix::<i32>::zeros(16, 0)),
            Err(ServeError::EmptyRequest)
        ));
        let bad = Matrix::from_fn(16, 2, |_, _| 999);
        assert!(matches!(
            m.validate(&bad),
            Err(ServeError::CodesOutOfRange { .. })
        ));
    }

    #[test]
    fn registry_shares_and_replaces() {
        let (layers, calib) = spec_chain(6, &[8, 4]);
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let m = PreparedModel::prepare("a", &layers, &calib, PrepareOptions::default())
            .expect("prepare");
        let h1 = reg.insert(m.clone());
        let h2 = reg.get("a").expect("registered");
        assert!(Arc::ptr_eq(&h1, &h2));
        let h3 = reg.insert(m);
        assert!(!Arc::ptr_eq(&h1, &h3));
        assert_eq!(reg.names(), vec!["a".to_string()]);
        assert!(reg.get("missing").is_none());
    }

    #[test]
    fn instance_ids_are_unique_per_preparation() {
        let (layers, calib) = spec_chain(7, &[16, 8]);
        let a = PreparedModel::prepare("m", &layers, &calib, PrepareOptions::default())
            .expect("prepare");
        let b = PreparedModel::prepare("m", &layers, &calib, PrepareOptions::default())
            .expect("prepare");
        assert_ne!(
            a.instance_id(),
            b.instance_id(),
            "re-preparation must mint a fresh identity"
        );
        assert_eq!(a.instance_id(), a.clone().instance_id());
        assert_ne!(a.instance_id(), 0, "0 is reserved as never-issued");
    }

    #[test]
    fn from_capture_serves_a_real_transformer_layer() {
        use panacea_models::engine::{TinyTransformer, TransformerConfig};
        let model = TinyTransformer::new_random(TransformerConfig::default(), 11);
        let mut rng = panacea_tensor::seeded_rng(12);
        let x = DistributionKind::Gaussian {
            mean: 0.0,
            std: 1.0,
        }
        .sample_matrix(64, 16, &mut rng);
        let captures = model.captured_layers(&x);
        let fc2 = captures
            .iter()
            .find(|c| c.name == "block0.fc2")
            .expect("captured");
        let prepared =
            PreparedModel::from_capture(fc2, PrepareOptions::default()).expect("prepare");
        assert_eq!(prepared.name(), "block0.fc2");
        assert_eq!(prepared.in_features(), 256);
        let (out, _) = prepared.forward_f32(&fc2.input);
        assert_eq!(out.shape(), (64, 16));
    }
}
