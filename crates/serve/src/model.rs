//! Prepared models and the registry that shares them across workers.
//!
//! Preparation — weight quantization, SBR slicing, activation calibration,
//! zero-point folding, requantizer construction — is the expensive,
//! one-time half of the Panacea inference flow. A [`PreparedModel`] runs
//! it exactly once per model and is then immutable, so the runtime shares
//! it across worker threads behind an [`Arc`] and every request pays only
//! the cheap half: one AQS-GEMM chain over its activation columns.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use panacea_telemetry::{EventSeverity, FlightRecorder};

use panacea_bitslice::VECTOR_LEN;
use panacea_block::{KvCache, QuantizedBlock};
use panacea_core::pipeline::{pad_cols_to_vector_len, run_coalesced, QuantizedLinear};
use panacea_core::Workload;
use panacea_models::engine::CapturedLayer;
use panacea_quant::dbs::DbsConfig;
use panacea_quant::{ActivationCalibrator, LayerQuantConfig, Quantizer};
use panacea_tensor::Matrix;

use crate::{Payload, ServeError};

/// One float layer of a model to prepare: weights `M × K` and a bias of
/// length `M`.
#[derive(Debug, Clone)]
pub struct LayerSpec {
    /// Weight matrix (`M × K`).
    pub weight: Matrix<f32>,
    /// Bias (`M` entries).
    pub bias: Vec<f32>,
}

impl LayerSpec {
    /// A layer with a zero bias.
    pub fn unbiased(weight: Matrix<f32>) -> Self {
        let bias = vec![0.0; weight.rows()];
        LayerSpec { weight, bias }
    }
}

/// Quantization knobs applied during preparation.
#[derive(Debug, Clone, Copy)]
pub struct PrepareOptions {
    /// Weight bit-width (SBR format family, e.g. 4 or 7).
    pub w_bits: u8,
    /// Apply zero-point manipulation during calibration.
    pub zpm: bool,
    /// Apply distribution-based bit-slicing during calibration.
    pub dbs: bool,
}

impl Default for PrepareOptions {
    fn default() -> Self {
        PrepareOptions {
            w_bits: 7,
            zpm: true,
            dbs: true,
        }
    }
}

/// What a prepared model executes per request.
#[derive(Debug, Clone)]
enum Body {
    /// A linear chain: adjacent layers glued by requantizers so codes
    /// flow end to end without leaving the integer domain.
    Chain {
        layers: Vec<QuantizedLinear>,
        input_cfg: LayerQuantConfig,
    },
    /// A stack of quantized transformer blocks; requests and responses
    /// are f32 hidden states (`Payload::Hidden`).
    Blocks { blocks: Vec<QuantizedBlock> },
}

/// A fully prepared model: either a linear chain (every layer's weights
/// sliced, every activation format calibrated, adjacent layers glued by
/// requantizers) or a stack of quantized transformer blocks
/// ([`panacea_block::QuantizedBlock`]) executing pre-norm attention +
/// MLP with residuals.
#[derive(Debug, Clone)]
pub struct PreparedModel {
    name: String,
    /// Process-unique preparation identity — see
    /// [`instance_id`](Self::instance_id).
    instance: u64,
    body: Body,
    in_features: usize,
    out_features: usize,
}

/// Source of [`PreparedModel::instance_id`] values; 0 is never issued.
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

impl PreparedModel {
    /// Prepares a linear chain from float layers.
    ///
    /// `calibration` is a `K × N` activation sample for the first layer's
    /// input; later layers are calibrated on the float reference
    /// intermediates it induces (`W·x + b` per layer), mirroring how PTQ
    /// calibration observes real intermediate tensors.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::EmptyModel`] for zero layers,
    /// [`ServeError::Shape`] if adjacent layers disagree on width or the
    /// calibration sample has the wrong feature count, and forwards
    /// quantization failures as [`ServeError::Pipeline`].
    pub fn prepare(
        name: impl Into<String>,
        layers: &[LayerSpec],
        calibration: &Matrix<f32>,
        opts: PrepareOptions,
    ) -> Result<Self, ServeError> {
        let name = name.into();
        let Some(first) = layers.first() else {
            return Err(ServeError::EmptyModel { model: name });
        };
        if calibration.rows() != first.weight.cols() {
            return Err(ServeError::Shape {
                expected: first.weight.cols(),
                actual: calibration.rows(),
            });
        }
        for pair in layers.windows(2) {
            if pair[1].weight.cols() != pair[0].weight.rows() {
                return Err(ServeError::Shape {
                    expected: pair[0].weight.rows(),
                    actual: pair[1].weight.cols(),
                });
            }
        }
        // The PE array emits output rows in vectors of VECTOR_LEN, so
        // every layer's M must align; catching it here turns a worker
        // panic at forward time into a preparation error.
        for spec in layers {
            if spec.weight.rows() % VECTOR_LEN != 0 {
                return Err(ServeError::UnalignedRows {
                    rows: spec.weight.rows(),
                });
            }
        }

        // Calibrate every layer input on the float reference chain.
        let calibrate = |x: &Matrix<f32>| {
            let mut cal = ActivationCalibrator::new(8).with_zpm(opts.zpm);
            if opts.dbs {
                cal = cal.with_dbs(DbsConfig::default());
            }
            cal.observe(x);
            cal.finalize()
        };
        let mut configs = Vec::with_capacity(layers.len());
        let mut x = calibration.clone();
        for spec in layers {
            configs.push(calibrate(&x));
            let mut next = spec.weight.gemm_f32(&x).map_err(|_| ServeError::Shape {
                expected: spec.weight.cols(),
                actual: x.rows(),
            })?;
            for m in 0..next.rows() {
                for n in 0..next.cols() {
                    next[(m, n)] += spec.bias[m];
                }
            }
            x = next;
        }

        let mut prepared = Vec::with_capacity(layers.len());
        for (i, spec) in layers.iter().enumerate() {
            let mut layer =
                QuantizedLinear::prepare(&spec.weight, &spec.bias, opts.w_bits, configs[i])
                    .map_err(ServeError::Pipeline)?;
            if i + 1 < layers.len() {
                layer = layer
                    .with_output(configs[i + 1])
                    .map_err(ServeError::Pipeline)?;
            }
            prepared.push(layer);
        }
        Ok(PreparedModel {
            name,
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            in_features: first.weight.cols(),
            out_features: layers.last().expect("non-empty").weight.rows(),
            body: Body::Chain {
                layers: prepared,
                input_cfg: configs[0],
            },
        })
    }

    /// Wraps an already-prepared transformer-block stack (built by
    /// `panacea_block::BlockBuilder`) as a servable model. Requests are
    /// `d_model × tokens` [`Payload::Hidden`] f32 hidden states; each
    /// request's columns form one attention sequence.
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptyModel`] for zero blocks and
    /// [`ServeError::Shape`] if the blocks disagree on `d_model`.
    pub fn from_blocks(
        name: impl Into<String>,
        blocks: Vec<QuantizedBlock>,
    ) -> Result<Self, ServeError> {
        let name = name.into();
        let Some(first) = blocks.first() else {
            return Err(ServeError::EmptyModel { model: name });
        };
        let d_model = first.d_model();
        for b in &blocks {
            if b.d_model() != d_model {
                return Err(ServeError::Shape {
                    expected: d_model,
                    actual: b.d_model(),
                });
            }
        }
        Ok(PreparedModel {
            name,
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            in_features: d_model,
            out_features: d_model,
            body: Body::Blocks { blocks },
        })
    }

    /// Whether this model executes transformer blocks (f32 hidden-state
    /// requests) rather than a code-domain linear chain.
    pub fn is_block(&self) -> bool {
        matches!(self.body, Body::Blocks { .. })
    }

    /// Prepares a single-layer model from a [`CapturedLayer`] recorded by
    /// the transformer engine, calibrated on the layer's real captured
    /// input.
    ///
    /// # Errors
    ///
    /// Same conditions as [`prepare`](Self::prepare).
    pub fn from_capture(capture: &CapturedLayer, opts: PrepareOptions) -> Result<Self, ServeError> {
        PreparedModel::prepare(
            capture.name.clone(),
            &[LayerSpec::unbiased(capture.weight.clone())],
            &capture.input,
            opts,
        )
    }

    /// The model's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A process-unique id minted per [`prepare`](Self::prepare) call.
    ///
    /// Two models with equal ids are guaranteed bit-identical in their
    /// outputs (clones share the id and the preparation is
    /// deterministic), while a *re-preparation* — even of the same
    /// weights under the same name — gets a fresh id. This is the
    /// identity a response cache must key on: registry names can be
    /// re-bound to new models, names cannot.
    pub fn instance_id(&self) -> u64 {
        self.instance
    }

    /// Features per input column (`K` of the first layer).
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Rows of the output accumulator (`M` of the last layer).
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Number of prepared layers (linear layers, or transformer blocks).
    pub fn num_layers(&self) -> usize {
        match &self.body {
            Body::Chain { layers, .. } => layers.len(),
            Body::Blocks { blocks } => blocks.len(),
        }
    }

    /// The activation format requests must quantize into.
    ///
    /// # Panics
    ///
    /// Panics for transformer-block models — their requests are f32
    /// hidden states, not calibrated codes (check
    /// [`is_block`](Self::is_block) first).
    pub fn input_config(&self) -> &LayerQuantConfig {
        match &self.body {
            Body::Chain { input_cfg, .. } => input_cfg,
            Body::Blocks { .. } => {
                panic!("block models take f32 hidden states, not quantized codes")
            }
        }
    }

    /// The scale converting final code accumulators to floats. `1.0`
    /// for block models, whose [`Payload::Hidden`] outputs need no
    /// scaling.
    pub fn output_scale(&self) -> f64 {
        match &self.body {
            Body::Chain { layers, .. } => layers.last().expect("non-empty").accumulator_scale(),
            Body::Blocks { .. } => 1.0,
        }
    }

    /// Converts a float input (`K × N`) into this model's native request
    /// payload: calibrated activation codes for linear chains, the
    /// hidden states themselves for transformer-block models.
    pub fn quantize(&self, x: &Matrix<f32>) -> Payload {
        match &self.body {
            Body::Chain { input_cfg, .. } => Payload::Codes(input_cfg.quantizer.quantize_matrix(x)),
            Body::Blocks { .. } => Payload::Hidden(x.clone()),
        }
    }

    /// Checks a request's payload against this model's input contract —
    /// including the payload *kind*, so a mismatch between what the
    /// caller sent and what the model executes is caught here, in one
    /// place, instead of by per-verb guards upstream.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::PayloadKindMismatch`] when the payload's
    /// domain does not match the model's kind, [`ServeError::Shape`] on
    /// a feature-count mismatch, and [`ServeError::EmptyRequest`] for
    /// zero columns. Linear chains additionally reject codes exceeding
    /// the calibrated format ([`ServeError::CodesOutOfRange`]); block
    /// models reject NaN or infinite hidden states
    /// ([`ServeError::NonFiniteInput`]).
    pub fn validate(&self, payload: &Payload) -> Result<(), ServeError> {
        if payload.rows() != self.in_features {
            return Err(ServeError::Shape {
                expected: self.in_features,
                actual: payload.rows(),
            });
        }
        if payload.cols() == 0 {
            return Err(ServeError::EmptyRequest);
        }
        match (&self.body, payload) {
            (Body::Chain { input_cfg, .. }, Payload::Codes(codes)) => {
                if !input_cfg.codes_in_range(codes) {
                    return Err(ServeError::CodesOutOfRange {
                        max: input_cfg.max_code(),
                    });
                }
            }
            (Body::Blocks { .. }, Payload::Hidden(h)) => {
                if !h.iter().all(|v| v.is_finite()) {
                    return Err(ServeError::NonFiniteInput);
                }
            }
            _ => {
                return Err(ServeError::PayloadKindMismatch {
                    model: self.name.clone(),
                    model_is_block: self.is_block(),
                });
            }
        }
        Ok(())
    }

    /// Runs the full chain on already-quantized codes (`K × N`), returning
    /// the final integer accumulators and the summed workload — the
    /// direct code-domain entry point for linear chains.
    ///
    /// The input is zero-padded up to the PE array's vector width and the
    /// padding trimmed from the output, so any column count is accepted;
    /// the padded columns are wasted work a wider batch would reclaim.
    ///
    /// # Panics
    ///
    /// Panics on transformer-block models (their payloads are hidden
    /// states — use [`forward`](Self::forward)) and if `codes` violates
    /// the input contract (use [`validate`](Self::validate) first — the
    /// runtime does).
    pub fn forward_codes(&self, codes: &Matrix<i32>) -> (Matrix<i32>, Workload) {
        let Body::Chain { layers, .. } = &self.body else {
            panic!("block models take hidden states, not codes; use forward()")
        };
        // Pad once at entry (skipping the copy when already aligned —
        // the common case for a well-coalesced batch); every layer
        // preserves N.
        let (padded, pad);
        let input = if codes.cols().is_multiple_of(VECTOR_LEN) {
            pad = 0;
            codes
        } else {
            (padded, pad) = pad_cols_to_vector_len(codes);
            &padded
        };
        let mut wl = Workload::default();
        let last = layers.len() - 1;
        let mut x: Option<Matrix<i32>> = None;
        for layer in &layers[..last] {
            let (next, w) = layer.forward_codes(x.as_ref().unwrap_or(input));
            wl = wl.merged(&w);
            x = Some(next);
        }
        let (acc, w) = layers[last].forward(x.as_ref().unwrap_or(input));
        let acc = if pad == 0 {
            acc
        } else {
            acc.submatrix(0, 0, acc.rows(), acc.cols() - pad)
        };
        (acc, wl.merged(&w))
    }

    /// Block-body execution over hidden states: `segments` lists the
    /// token count of each independent sequence packed into the columns
    /// (attention never crosses a segment boundary).
    fn forward_block_segments(
        &self,
        h: &Matrix<f32>,
        segments: &[usize],
    ) -> (Matrix<f32>, Workload) {
        let Body::Blocks { blocks } = &self.body else {
            unreachable!("callers dispatch on body kind");
        };
        let mut h = h.clone();
        let mut wl = Workload::default();
        for block in blocks {
            let (next, w) = block.forward_segments(&h, segments);
            wl = wl.merged(&w.total());
            h = next;
        }
        (h, wl)
    }

    /// Runs one request in its typed payload domain: codes in → code
    /// accumulators out for linear chains, hidden states in → hidden
    /// states out for transformer-block models (the request's columns
    /// form one attention sequence).
    ///
    /// # Panics
    ///
    /// Panics if the payload violates the input contract — including its
    /// kind (use [`validate`](Self::validate) first; the runtime does).
    pub fn forward(&self, payload: &Payload) -> (Payload, Workload) {
        match (&self.body, payload) {
            (Body::Chain { .. }, Payload::Codes(codes)) => {
                let (acc, wl) = self.forward_codes(codes);
                (Payload::Codes(acc), wl)
            }
            (Body::Blocks { .. }, Payload::Hidden(h)) => {
                let (out, wl) = self.forward_block_segments(h, &[h.cols()]);
                (Payload::Hidden(out), wl)
            }
            _ => panic!("payload kind does not match the model (validate first)"),
        }
    }

    /// Runs the model on several requests' payloads at once: their
    /// columns are coalesced into one wide GEMM `N` dimension, executed
    /// in a single pass, and split back per request — bit-identical to
    /// running each request alone. For block models each request's
    /// columns stay one attention sequence (the coalescing only widens
    /// the GEMMs). This is the batched entry point the runtime's batch
    /// executor drives.
    ///
    /// # Panics
    ///
    /// Panics if the requests disagree on the feature dimension or
    /// violate the input contract — including payload kind (the runtime
    /// validates at submission).
    pub fn forward_batch(&self, requests: &[&Payload]) -> (Vec<Payload>, Workload) {
        match &self.body {
            Body::Chain { .. } => {
                let codes: Vec<&Matrix<i32>> = requests
                    .iter()
                    .map(|p| p.as_codes().expect("chain batch carries codes"))
                    .collect();
                let (outs, wl) = run_coalesced(&codes, |stacked| self.forward_codes(stacked));
                (outs.into_iter().map(Payload::Codes).collect(), wl)
            }
            Body::Blocks { .. } => {
                let hiddens: Vec<&Matrix<f32>> = requests
                    .iter()
                    .map(|p| p.as_hidden().expect("block batch carries hidden states"))
                    .collect();
                let widths: Vec<usize> = hiddens.iter().map(|m| m.cols()).collect();
                if hiddens.is_empty() {
                    return (Vec::new(), Workload::default());
                }
                let stacked =
                    Matrix::hstack(&hiddens).expect("batched sequences must share the model width");
                let (out, wl) = self.forward_block_segments(&stacked, &widths);
                let parts = out
                    .split_cols(&widths)
                    .expect("block forward keeps one output column per input column");
                (parts.into_iter().map(Payload::Hidden).collect(), wl)
            }
        }
    }

    /// Float-in/float-out convenience path: quantize → run → dequantize
    /// for chains, hidden states in → hidden states out for block models.
    pub fn forward_f32(&self, x: &Matrix<f32>) -> (Matrix<f32>, Workload) {
        let (out, wl) = self.forward(&self.quantize(x));
        let f = match out {
            Payload::Codes(acc) => {
                let s = self.output_scale();
                acc.map(|&v| (f64::from(v) * s) as f32)
            }
            Payload::Hidden(h) => h,
        };
        (f, wl)
    }

    /// An empty KV cache shaped for this model's block stack — the
    /// per-sequence state a decode session grows.
    ///
    /// # Errors
    ///
    /// [`ServeError::PayloadKindMismatch`] for linear chains, which have
    /// no attention state to cache.
    pub fn new_kv_cache(&self) -> Result<KvCache, ServeError> {
        match &self.body {
            Body::Blocks { blocks } => Ok(KvCache::for_blocks(blocks)),
            Body::Chain { .. } => Err(ServeError::PayloadKindMismatch {
                model: self.name.clone(),
                model_is_block: false,
            }),
        }
    }

    /// One KV-cached decode step: runs `hidden` (`d_model × t_new`, the
    /// freshly appended tokens of one sequence) through the block stack
    /// with incremental causal attention over `kv`'s cached prefix,
    /// advancing the cache by `t_new` tokens. Stepping is bit-identical
    /// to a full causal recompute over the concatenated sequence
    /// (`QuantizedBlock::forward_segments_causal` per block) — see the
    /// decode-exactness property tests.
    ///
    /// # Errors
    ///
    /// [`ServeError::PayloadKindMismatch`] for linear chains,
    /// [`ServeError::Shape`] / [`ServeError::EmptyRequest`] /
    /// [`ServeError::NonFiniteInput`] for inputs violating the hidden
    /// payload contract, and [`ServeError::Shape`] when `kv` was built
    /// for a different stack.
    pub fn forward_decode(
        &self,
        hidden: &Matrix<f32>,
        kv: &mut KvCache,
    ) -> Result<(Matrix<f32>, Workload), ServeError> {
        self.validate_decode(hidden)?;
        self.forward_decode_prevalidated(hidden, kv)
    }

    /// [`forward_decode`](Self::forward_decode) minus the payload
    /// re-scan, for serving hot paths that already ran
    /// [`validate_decode`](Self::validate_decode) on `hidden` (the KV
    /// shape is still checked — it is O(1)).
    pub(crate) fn forward_decode_prevalidated(
        &self,
        hidden: &Matrix<f32>,
        kv: &mut KvCache,
    ) -> Result<(Matrix<f32>, Workload), ServeError> {
        let blocks = self.decode_blocks()?;
        self.check_kv(blocks, kv)?;
        let (out, wl) = panacea_block::decode_step(blocks, hidden, kv);
        Ok((out, wl.total()))
    }

    /// Continuous-batching decode: many sessions' new token columns,
    /// stacked in `hidden` (`segments[i]` columns advance `kvs[i]`), run
    /// through one GEMM pass per block
    /// ([`panacea_block::decode_step_batch`]) with attention and the K/V
    /// append per session. Each session's output columns are
    /// bit-identical to stepping it alone through
    /// [`forward_decode`](Self::forward_decode) — this is the fused pass
    /// the decode batcher executes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`forward_decode`](Self::forward_decode),
    /// plus [`ServeError::Shape`] when `segments` and `kvs` disagree in
    /// length, any segment is empty, or the segments do not cover
    /// `hidden`'s columns exactly.
    pub fn forward_decode_batch(
        &self,
        hidden: &Matrix<f32>,
        segments: &[usize],
        kvs: &mut [&mut KvCache],
    ) -> Result<(Matrix<f32>, Workload), ServeError> {
        self.validate_decode(hidden)?;
        if segments.len() != kvs.len() {
            return Err(ServeError::Shape {
                expected: segments.len(),
                actual: kvs.len(),
            });
        }
        if segments.contains(&0) {
            return Err(ServeError::EmptyRequest);
        }
        if segments.iter().sum::<usize>() != hidden.cols() {
            return Err(ServeError::Shape {
                expected: hidden.cols(),
                actual: segments.iter().sum(),
            });
        }
        self.forward_decode_batch_prevalidated(hidden, segments, kvs)
    }

    /// [`forward_decode_batch`](Self::forward_decode_batch) minus the
    /// payload re-scan and segment checks, for the decode batcher's
    /// worker: every step was validated before it could enqueue, and
    /// the worker builds `segments` from the very matrices it stacks.
    /// KV shape checks (O(1) each) remain.
    pub(crate) fn forward_decode_batch_prevalidated(
        &self,
        hidden: &Matrix<f32>,
        segments: &[usize],
        kvs: &mut [&mut KvCache],
    ) -> Result<(Matrix<f32>, Workload), ServeError> {
        let blocks = self.decode_blocks()?;
        for kv in kvs.iter() {
            self.check_kv(blocks, kv)?;
        }
        let (out, wl) = panacea_block::decode_step_batch(blocks, hidden, segments, kvs);
        Ok((out, wl.total()))
    }

    /// The hidden-payload contract for decode steps, checked without
    /// cloning the step into a [`Payload`] (decode steps are the
    /// per-token hot path). The serving layer runs this *before* a step
    /// can enter a fused batch, so one bad request can never poison its
    /// batchmates.
    ///
    /// # Errors
    ///
    /// [`ServeError::PayloadKindMismatch`] for linear chains,
    /// [`ServeError::Shape`] / [`ServeError::EmptyRequest`] /
    /// [`ServeError::NonFiniteInput`] for inputs violating the hidden
    /// payload contract.
    pub fn validate_decode(&self, hidden: &Matrix<f32>) -> Result<(), ServeError> {
        self.decode_blocks()?;
        if hidden.rows() != self.in_features {
            return Err(ServeError::Shape {
                expected: self.in_features,
                actual: hidden.rows(),
            });
        }
        if hidden.cols() == 0 {
            return Err(ServeError::EmptyRequest);
        }
        if !hidden.iter().all(|v| v.is_finite()) {
            return Err(ServeError::NonFiniteInput);
        }
        Ok(())
    }

    /// The block stack, or the chain-model error decode paths share.
    fn decode_blocks(&self) -> Result<&[QuantizedBlock], ServeError> {
        match &self.body {
            Body::Blocks { blocks } => Ok(blocks),
            Body::Chain { .. } => Err(ServeError::PayloadKindMismatch {
                model: self.name.clone(),
                model_is_block: false,
            }),
        }
    }

    fn check_kv(&self, blocks: &[QuantizedBlock], kv: &KvCache) -> Result<(), ServeError> {
        if kv.num_blocks() != blocks.len() {
            return Err(ServeError::Shape {
                expected: blocks.len(),
                actual: kv.num_blocks(),
            });
        }
        if kv.d_model() != self.in_features {
            return Err(ServeError::Shape {
                expected: self.in_features,
                actual: kv.d_model(),
            });
        }
        Ok(())
    }
}

/// A concurrent name → [`PreparedModel`] map shared by every worker.
///
/// Models are immutable once inserted; lookups hand out cheap [`Arc`]
/// clones, so a worker mid-batch never blocks registration of new models.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<PreparedModel>>>,
    /// Optional flight recorder: registrations and re-registrations
    /// land in the event ring once one is attached.
    recorder: Mutex<Option<FlightRecorder>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Attaches a flight recorder: subsequent (re-)registrations record
    /// `model_register` / `model_reregister` events.
    pub fn set_recorder(&self, recorder: FlightRecorder) {
        *self.recorder.lock().expect("recorder slot poisoned") = Some(recorder);
    }

    /// Registers a prepared model under its name, returning the shared
    /// handle. Re-registering a name replaces the model for *new*
    /// requests; in-flight batches keep the handle they resolved.
    pub fn insert(&self, model: PreparedModel) -> Arc<PreparedModel> {
        self.insert_shared(Arc::new(model))
    }

    /// Registers an already-shared prepared model without cloning its
    /// weights — how a shard router gives every shard's registry the
    /// *same* prepared instance, so N shards cost one preparation and
    /// one copy of the sliced weights.
    pub fn insert_shared(&self, model: Arc<PreparedModel>) -> Arc<PreparedModel> {
        let replaced = self
            .models
            .write()
            .expect("registry lock poisoned")
            .insert(model.name().to_string(), Arc::clone(&model));
        if let Some(recorder) = &*self.recorder.lock().expect("recorder slot poisoned") {
            let kind = if replaced.is_some() {
                "model_reregister"
            } else {
                "model_register"
            };
            recorder.record(EventSeverity::Info, kind, format!("model={}", model.name()));
        }
        model
    }

    /// Looks up a model by name.
    pub fn get(&self, name: &str) -> Option<Arc<PreparedModel>> {
        self.models
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .models
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().expect("registry lock poisoned").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panacea_tensor::dist::DistributionKind;

    fn spec_chain(seed: u64, dims: &[usize]) -> (Vec<LayerSpec>, Matrix<f32>) {
        let mut rng = panacea_tensor::seeded_rng(seed);
        let layers: Vec<LayerSpec> = dims
            .windows(2)
            .map(|d| {
                let w = DistributionKind::Gaussian {
                    mean: 0.0,
                    std: 0.05,
                }
                .sample_matrix(d[1], d[0], &mut rng);
                LayerSpec::unbiased(w)
            })
            .collect();
        let calib = DistributionKind::TransformerAct {
            core_mean: 0.1,
            core_std: 0.4,
            pos_scale: 8.0,
            neg_scale: 5.0,
            outlier_frac: 0.02,
        }
        .sample_matrix(dims[0], 24, &mut rng);
        (layers, calib)
    }

    #[test]
    fn prepare_builds_requant_chain() {
        let (layers, calib) = spec_chain(1, &[32, 16, 8]);
        let m = PreparedModel::prepare("mlp", &layers, &calib, PrepareOptions::default())
            .expect("prepare");
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.in_features(), 32);
        assert_eq!(m.out_features(), 8);
        let payload = m.quantize(&calib);
        assert_eq!(payload.kind(), crate::PayloadKind::Codes);
        assert!(m.validate(&payload).is_ok());
        let (out, wl) = m.forward(&payload);
        assert_eq!(out.as_codes().expect("chain output").shape(), (8, 24));
        assert!(wl.mul > 0);
    }

    #[test]
    fn forward_is_deterministic_across_clones() {
        let (layers, calib) = spec_chain(2, &[16, 8]);
        let m = PreparedModel::prepare("m", &layers, &calib, PrepareOptions::default())
            .expect("prepare");
        let payload = m.quantize(&calib);
        let (a, _) = m.forward(&payload);
        let (b, _) = m.clone().forward(&payload);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_model_rejected() {
        let calib = Matrix::<f32>::zeros(4, 4);
        let err =
            PreparedModel::prepare("none", &[], &calib, PrepareOptions::default()).unwrap_err();
        assert!(matches!(err, ServeError::EmptyModel { .. }));
    }

    #[test]
    fn shape_mismatches_rejected() {
        let (mut layers, calib) = spec_chain(3, &[16, 8, 4]);
        // Break the chain: second layer expects 8 features, give it 6.
        layers[1].weight = Matrix::<f32>::zeros(4, 6);
        layers[1].bias = vec![0.0; 4];
        assert!(matches!(
            PreparedModel::prepare("bad", &layers, &calib, PrepareOptions::default()),
            Err(ServeError::Shape {
                expected: 8,
                actual: 6
            })
        ));
        // Wrong calibration width.
        let (layers, _) = spec_chain(4, &[16, 8]);
        let bad_calib = Matrix::<f32>::zeros(9, 4);
        assert!(matches!(
            PreparedModel::prepare("bad2", &layers, &bad_calib, PrepareOptions::default()),
            Err(ServeError::Shape {
                expected: 16,
                actual: 9
            })
        ));
    }

    #[test]
    fn validate_enforces_request_contract() {
        let (layers, calib) = spec_chain(5, &[16, 8]);
        let m = PreparedModel::prepare("m", &layers, &calib, PrepareOptions::default())
            .expect("prepare");
        assert!(matches!(
            m.validate(&Matrix::<i32>::zeros(15, 2).into()),
            Err(ServeError::Shape {
                expected: 16,
                actual: 15
            })
        ));
        assert!(matches!(
            m.validate(&Matrix::<i32>::zeros(16, 0).into()),
            Err(ServeError::EmptyRequest)
        ));
        let bad = Matrix::from_fn(16, 2, |_, _| 999);
        assert!(matches!(
            m.validate(&bad.into()),
            Err(ServeError::CodesOutOfRange { .. })
        ));
        // The payload kind is part of the contract: hidden states sent
        // to a linear chain are rejected here, not by a verb guard.
        assert!(matches!(
            m.validate(&Matrix::<f32>::zeros(16, 2).into()),
            Err(ServeError::PayloadKindMismatch {
                model_is_block: false,
                ..
            })
        ));
    }

    #[test]
    fn registry_shares_and_replaces() {
        let (layers, calib) = spec_chain(6, &[8, 4]);
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let m = PreparedModel::prepare("a", &layers, &calib, PrepareOptions::default())
            .expect("prepare");
        let h1 = reg.insert(m.clone());
        let h2 = reg.get("a").expect("registered");
        assert!(Arc::ptr_eq(&h1, &h2));
        let h3 = reg.insert(m);
        assert!(!Arc::ptr_eq(&h1, &h3));
        assert_eq!(reg.names(), vec!["a".to_string()]);
        assert!(reg.get("missing").is_none());
    }

    #[test]
    fn instance_ids_are_unique_per_preparation() {
        let (layers, calib) = spec_chain(7, &[16, 8]);
        let a = PreparedModel::prepare("m", &layers, &calib, PrepareOptions::default())
            .expect("prepare");
        let b = PreparedModel::prepare("m", &layers, &calib, PrepareOptions::default())
            .expect("prepare");
        assert_ne!(
            a.instance_id(),
            b.instance_id(),
            "re-preparation must mint a fresh identity"
        );
        assert_eq!(a.instance_id(), a.clone().instance_id());
        assert_ne!(a.instance_id(), 0, "0 is reserved as never-issued");
    }

    use crate::testutil::{block_model as shared_block_model, hidden};

    fn block_model(seed: u64) -> (PreparedModel, Vec<panacea_block::QuantizedBlock>) {
        shared_block_model("blk", seed)
    }

    #[test]
    fn block_model_round_trips_hidden_states_bit_exactly() {
        let (model, blocks) = block_model(40);
        assert!(model.is_block());
        assert_eq!(model.num_layers(), 2);
        assert_eq!(model.in_features(), 16);
        assert_eq!(model.out_features(), 16);
        assert_eq!(model.output_scale(), 1.0);
        let x = hidden(16, 5, 0);
        let payload = model.quantize(&x);
        assert_eq!(payload.kind(), crate::PayloadKind::Hidden);
        assert!(model.validate(&payload).is_ok());
        let (out, wl) = model.forward(&payload);
        assert!(wl.mul > 0);
        // Direct block-chain execution is the oracle.
        let mut expect = x.clone();
        for b in &blocks {
            expect = b.forward(&expect).0;
        }
        assert_eq!(out.as_hidden().expect("block output"), &expect);
        let (f32_out, _) = model.forward_f32(&x);
        assert_eq!(f32_out, expect);
    }

    #[test]
    fn block_model_batch_is_bit_exact_per_request() {
        let (model, _) = block_model(41);
        let requests: Vec<Payload> = [1usize, 4, 2]
            .iter()
            .enumerate()
            .map(|(i, &w)| model.quantize(&hidden(16, w, i)))
            .collect();
        let refs: Vec<&Payload> = requests.iter().collect();
        let (batched, _) = model.forward_batch(&refs);
        for (req, got) in requests.iter().zip(&batched) {
            let (alone, _) = model.forward(req);
            assert_eq!(got, &alone, "batched block request diverged from solo");
        }
    }

    #[test]
    fn block_model_validate_enforces_the_hidden_contract() {
        let (model, _) = block_model(42);
        assert!(matches!(
            model.validate(&Matrix::<f32>::zeros(15, 2).into()),
            Err(ServeError::Shape {
                expected: 16,
                actual: 15
            })
        ));
        assert!(matches!(
            model.validate(&Matrix::<f32>::zeros(16, 0).into()),
            Err(ServeError::EmptyRequest)
        ));
        let nan = Matrix::from_fn(16, 2, |_, _| f32::NAN);
        assert!(matches!(
            model.validate(&nan.into()),
            Err(ServeError::NonFiniteInput)
        ));
        let inf = Matrix::from_fn(16, 1, |_, _| f32::INFINITY);
        assert!(matches!(
            model.validate(&inf.into()),
            Err(ServeError::NonFiniteInput)
        ));
        // Codes against a block model are a payload-kind mismatch.
        assert!(matches!(
            model.validate(&Matrix::<i32>::zeros(16, 2).into()),
            Err(ServeError::PayloadKindMismatch {
                model_is_block: true,
                ..
            })
        ));
    }

    #[test]
    fn empty_block_stack_rejected() {
        assert!(matches!(
            PreparedModel::from_blocks("none", Vec::new()),
            Err(ServeError::EmptyModel { .. })
        ));
    }

    #[test]
    fn decode_steps_match_full_causal_recompute() {
        let (model, blocks) = block_model(43);
        let mut kv = model.new_kv_cache().expect("block model");
        let prefix = hidden(16, 6, 7);
        // Step one token at a time; compare against a causal full pass.
        let mut expect = prefix.clone();
        for b in &blocks {
            expect = b.forward_segments_causal(&expect, &[6]).0;
        }
        for c in 0..6 {
            let one = prefix.submatrix(0, c, 16, 1);
            let (out, wl) = model.forward_decode(&one, &mut kv).expect("step");
            assert!(wl.mul > 0);
            for r in 0..16 {
                assert_eq!(out[(r, 0)].to_bits(), expect[(r, c)].to_bits());
            }
        }
        assert_eq!(kv.tokens(), 6);
    }

    #[test]
    fn decode_rejects_chains_and_bad_steps() {
        let (layers, calib) = spec_chain(8, &[16, 8]);
        let chain = PreparedModel::prepare("c", &layers, &calib, PrepareOptions::default())
            .expect("prepare");
        assert!(matches!(
            chain.new_kv_cache(),
            Err(ServeError::PayloadKindMismatch {
                model_is_block: false,
                ..
            })
        ));
        let (model, _) = block_model(44);
        let mut kv = model.new_kv_cache().expect("block model");
        assert!(matches!(
            model.forward_decode(&Matrix::<f32>::zeros(15, 1), &mut kv),
            Err(ServeError::Shape { .. })
        ));
        assert!(matches!(
            model.forward_decode(&Matrix::<f32>::zeros(16, 0), &mut kv),
            Err(ServeError::EmptyRequest)
        ));
        let nan = Matrix::from_fn(16, 1, |_, _| f32::NAN);
        assert!(matches!(
            model.forward_decode(&nan, &mut kv),
            Err(ServeError::NonFiniteInput)
        ));
        // A cache built for a different stack depth is rejected…
        let mut wrong_depth = panacea_block::KvCache::new(16, 5);
        assert!(matches!(
            model.forward_decode(&Matrix::<f32>::zeros(16, 1), &mut wrong_depth),
            Err(ServeError::Shape {
                expected: 2,
                actual: 5
            })
        ));
        // …and a wrong-width cache reports the widths, not the depths.
        let mut wrong_width = panacea_block::KvCache::new(32, 2);
        assert!(matches!(
            model.forward_decode(&Matrix::<f32>::zeros(16, 1), &mut wrong_width),
            Err(ServeError::Shape {
                expected: 16,
                actual: 32
            })
        ));
    }

    #[test]
    fn from_capture_serves_a_real_transformer_layer() {
        use panacea_models::engine::{TinyTransformer, TransformerConfig};
        let model = TinyTransformer::new_random(TransformerConfig::default(), 11);
        let mut rng = panacea_tensor::seeded_rng(12);
        let x = DistributionKind::Gaussian {
            mean: 0.0,
            std: 1.0,
        }
        .sample_matrix(64, 16, &mut rng);
        let captures = model.captured_layers(&x);
        let fc2 = captures
            .iter()
            .find(|c| c.name == "block0.fc2")
            .expect("captured");
        let prepared =
            PreparedModel::from_capture(fc2, PrepareOptions::default()).expect("prepare");
        assert_eq!(prepared.name(), "block0.fc2");
        assert_eq!(prepared.in_features(), 256);
        let (out, _) = prepared.forward_f32(&fc2.input);
        assert_eq!(out.shape(), (64, 16));
    }
}
