//! Shared fixtures for transformer-block tests across the workspace:
//! small prepared block stacks and deterministic hidden states.
//! `#[doc(hidden)]` public so the serve integration tests, the gateway
//! suites, and the benches reuse one fixture instead of re-implementing
//! it per crate; not part of the supported API. This crate is the
//! fixture's home because it already depends on both `panacea-block`
//! and `panacea-models` — downstream crates (e.g. the gateway) reuse it
//! without growing their own production dependency graphs.

use panacea_block::{zoo_hidden_states, zoo_transformer, BlockBuilder, QuantizedBlock};
use panacea_models::engine::TransformerConfig;
use panacea_models::zoo::Benchmark;
use panacea_tensor::Matrix;

use crate::PreparedModel;

/// Prepares a quantized block stack with zoo-distribution weights at an
/// explicit geometry — the parameterized core the other fixtures wrap.
pub fn block_stack(bench: Benchmark, cfg: TransformerConfig, seed: u64) -> Vec<QuantizedBlock> {
    let oracle = zoo_transformer(bench, cfg, seed);
    let calib = zoo_hidden_states(bench, cfg.d_model, 24, seed + 1);
    BlockBuilder::default()
        .prepare(&oracle, &calib)
        .expect("prepare blocks")
}

/// Prepares a small 2-block transformer-block model (width 16, 2 heads)
/// plus the raw block stack for direct-execution oracles.
pub fn block_model(name: &str, seed: u64) -> (PreparedModel, Vec<QuantizedBlock>) {
    let cfg = TransformerConfig {
        d_model: 16,
        n_heads: 2,
        d_ff: 32,
        n_layers: 2,
    };
    let blocks = block_stack(Benchmark::BertBase, cfg, seed);
    (
        PreparedModel::from_blocks(name, blocks.clone()).expect("from_blocks"),
        blocks,
    )
}

/// Deterministic finite hidden states for a block model.
pub fn hidden(d_model: usize, cols: usize, salt: usize) -> Matrix<f32> {
    Matrix::from_fn(d_model, cols, |r, c| {
        (((r * 31 + c * 7 + salt * 13) % 97) as f32 - 48.0) / 24.0
    })
}

/// Runs hidden states through a block stack directly — the oracle that
/// served responses are asserted bit-identical against.
pub fn direct_forward(blocks: &[QuantizedBlock], x: &Matrix<f32>) -> Matrix<f32> {
    let mut h = x.clone();
    for b in blocks {
        h = b.forward(&h).0;
    }
    h
}
