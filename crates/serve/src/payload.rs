//! The typed request/response payload every serving layer carries.
//!
//! Earlier revisions smuggled transformer-block hidden states through
//! the integer code queue as f32 bit patterns, and every component that
//! touched a request had to know (or guess) which domain the `i32`s
//! were really in. [`Payload`] makes the domain part of the type: a
//! request is either calibrated activation [`Codes`](Payload::Codes)
//! for a linear chain or f32 [`Hidden`](Payload::Hidden) states for a
//! transformer-block stack, end to end — queue, batcher, cache, wire.

use std::hash::{DefaultHasher, Hash, Hasher};

use panacea_tensor::Matrix;

/// Which domain a [`Payload`] carries — also the kind of model it can
/// be served by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// Calibrated integer activation codes (linear-chain models).
    Codes,
    /// f32 hidden states (transformer-block models).
    Hidden,
}

impl std::fmt::Display for PayloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PayloadKind::Codes => "codes",
            PayloadKind::Hidden => "hidden",
        })
    }
}

/// One request's (or response's) activation payload. See the module
/// docs.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Already-quantized activation codes (`K × N`), produced with a
    /// chain model's calibrated input format. As a response: the final
    /// integer accumulators, convertible to floats with the model's
    /// output scale.
    Codes(Matrix<i32>),
    /// f32 hidden states (`d_model × tokens`); the columns form one
    /// attention sequence. As a response: the output hidden states,
    /// needing no scale.
    Hidden(Matrix<f32>),
}

impl Payload {
    /// The payload's domain.
    pub fn kind(&self) -> PayloadKind {
        match self {
            Payload::Codes(_) => PayloadKind::Codes,
            Payload::Hidden(_) => PayloadKind::Hidden,
        }
    }

    /// Feature rows of the carried matrix.
    pub fn rows(&self) -> usize {
        match self {
            Payload::Codes(m) => m.rows(),
            Payload::Hidden(m) => m.rows(),
        }
    }

    /// Activation columns of the carried matrix — the GEMM `N` work a
    /// request contributes to a batch.
    pub fn cols(&self) -> usize {
        match self {
            Payload::Codes(m) => m.cols(),
            Payload::Hidden(m) => m.cols(),
        }
    }

    /// Total elements (all 4-byte, in either domain) — what byte-bounded
    /// components size this payload by.
    pub fn cells(&self) -> usize {
        self.rows() * self.cols()
    }

    /// The carried codes, if this is a [`Codes`](Payload::Codes)
    /// payload.
    pub fn as_codes(&self) -> Option<&Matrix<i32>> {
        match self {
            Payload::Codes(m) => Some(m),
            Payload::Hidden(_) => None,
        }
    }

    /// The carried hidden states, if this is a
    /// [`Hidden`](Payload::Hidden) payload.
    pub fn as_hidden(&self) -> Option<&Matrix<f32>> {
        match self {
            Payload::Codes(_) => None,
            Payload::Hidden(m) => Some(m),
        }
    }

    /// Bit-level equality: the identity a bit-exact replay cache must
    /// key on. Differs from `==` only for floats, where `-0.0 == 0.0`
    /// numerically but the two are distinct bit patterns (and a replay
    /// contract promises the *bits* match).
    pub fn bit_eq(&self, other: &Payload) -> bool {
        match (self, other) {
            (Payload::Codes(a), Payload::Codes(b)) => a == b,
            (Payload::Hidden(a), Payload::Hidden(b)) => {
                a.shape() == b.shape()
                    && a.iter()
                        .zip(b.iter())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            }
            _ => false,
        }
    }

    /// A content digest over the payload's kind, shape, and element
    /// bits — consistent with [`bit_eq`](Self::bit_eq) (equal payloads
    /// hash equal), used by caches to pick shards and buckets. Full-key
    /// correctness still requires a `bit_eq` check.
    pub fn content_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        match self {
            Payload::Codes(m) => {
                0u8.hash(&mut h);
                m.content_hash().hash(&mut h);
            }
            Payload::Hidden(m) => {
                1u8.hash(&mut h);
                m.rows().hash(&mut h);
                m.cols().hash(&mut h);
                for v in m.iter() {
                    v.to_bits().hash(&mut h);
                }
            }
        }
        h.finish()
    }
}

impl From<Matrix<i32>> for Payload {
    fn from(m: Matrix<i32>) -> Self {
        Payload::Codes(m)
    }
}

impl From<Matrix<f32>> for Payload {
    fn from(m: Matrix<f32>) -> Self {
        Payload::Hidden(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_shapes_are_reported() {
        let c: Payload = Matrix::<i32>::zeros(3, 2).into();
        let h: Payload = Matrix::<f32>::zeros(4, 5).into();
        assert_eq!(c.kind(), PayloadKind::Codes);
        assert_eq!(h.kind(), PayloadKind::Hidden);
        assert_eq!((c.rows(), c.cols(), c.cells()), (3, 2, 6));
        assert_eq!((h.rows(), h.cols(), h.cells()), (4, 5, 20));
        assert!(c.as_codes().is_some() && c.as_hidden().is_none());
        assert!(h.as_hidden().is_some() && h.as_codes().is_none());
    }

    #[test]
    fn bit_eq_distinguishes_signed_zero_where_eq_does_not() {
        let pos = Payload::Hidden(Matrix::from_vec(1, 1, vec![0.0f32]).unwrap());
        let neg = Payload::Hidden(Matrix::from_vec(1, 1, vec![-0.0f32]).unwrap());
        assert_eq!(pos, neg, "f32 == treats signed zeros as equal");
        assert!(!pos.bit_eq(&neg), "bit_eq must not");
        assert!(pos.bit_eq(&pos.clone()));
    }

    #[test]
    fn kinds_never_compare_bit_equal() {
        let c = Payload::Codes(Matrix::from_vec(1, 1, vec![0i32]).unwrap());
        let h = Payload::Hidden(Matrix::from_vec(1, 1, vec![0.0f32]).unwrap());
        assert!(!c.bit_eq(&h));
        assert_ne!(c.content_hash(), h.content_hash());
    }

    #[test]
    fn content_hash_tracks_bits() {
        let a = Payload::Hidden(Matrix::from_vec(1, 2, vec![1.5f32, -2.25]).unwrap());
        let b = Payload::Hidden(Matrix::from_vec(1, 2, vec![1.5f32, -2.25]).unwrap());
        let c = Payload::Hidden(Matrix::from_vec(2, 1, vec![1.5f32, -2.25]).unwrap());
        assert_eq!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), c.content_hash(), "shape must hash");
    }
}
