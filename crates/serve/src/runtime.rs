//! The worker pool: N threads draining a shared request queue.
//!
//! Requests are validated at submission, resolved to a shared
//! [`PreparedModel`] handle, and queued. Each worker repeatedly claims the
//! queue head's model, waits (bounded by [`BatchPolicy::max_wait`]) for
//! enough same-model companions to fill [`BatchPolicy::max_batch`]
//! columns, then dispatches the coalesced batch outside the lock.
//!
//! Shutdown is cooperative and clean: [`Runtime::shutdown`] (also run by
//! `Drop`) flips a flag under the queue lock and wakes every worker;
//! workers stop waiting for companions, drain every already-queued
//! request, and exit, and the caller joins them all — no detached
//! threads survive, and no accepted request is dropped.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, Weak};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use panacea_telemetry::TraceContext;

use crate::batch::{
    execute, head_dispatch_deadline, head_model_cols, purge_cancelled, purge_expired,
    queue_is_single_model, take_batch, BatchPolicy, Job,
};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::model::{ModelRegistry, PreparedModel};
use crate::{InferenceOutput, Payload, ServeError};

/// Runtime sizing and batching configuration.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Batching policy (column budget and linger time).
    pub policy: BatchPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 2,
            policy: BatchPolicy::default(),
        }
    }
}

#[derive(Debug)]
struct State {
    queue: VecDeque<Job>,
    /// Columns claimed by workers but not yet answered — the part of the
    /// load a queue snapshot would otherwise miss.
    in_flight_cols: usize,
    shutting_down: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    policy: BatchPolicy,
    metrics: Metrics,
}

impl Shared {
    /// Validates and enqueues a request — the single submission path
    /// behind both [`Runtime`] and [`RuntimeHandle`].
    fn submit_to(
        self: &Arc<Self>,
        model: Arc<PreparedModel>,
        payload: Payload,
        ctx: Option<TraceContext>,
        deadline: Option<Instant>,
    ) -> Result<Pending, ServeError> {
        model.validate(&payload)?;
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(ServeError::DeadlineExceeded);
        }
        let (tx, rx) = mpsc::channel();
        let cancelled = Arc::new(AtomicBool::new(false));
        let job = Job {
            model,
            payload,
            responder: tx,
            enqueued_at: Instant::now(),
            deadline,
            cancelled: Arc::clone(&cancelled),
            ctx,
        };
        {
            let mut st = self.state.lock().expect("queue lock poisoned");
            if st.shutting_down {
                return Err(ServeError::ShuttingDown);
            }
            st.queue.push_back(job);
        }
        self.work_ready.notify_one();
        Ok(Pending {
            rx,
            cancelled,
            shared: Arc::downgrade(self),
        })
    }

    fn queue_depth(&self) -> QueueDepth {
        let st = self.state.lock().expect("queue lock poisoned");
        QueueDepth {
            queued_jobs: st.queue.len(),
            queued_cols: st.queue.iter().map(|j| j.payload.cols()).sum(),
            in_flight_cols: st.in_flight_cols,
        }
    }
}

/// A point-in-time view of how much work a runtime is holding — what a
/// router compares across shards when spreading load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueDepth {
    /// Requests waiting in the queue.
    pub queued_jobs: usize,
    /// Activation columns waiting in the queue.
    pub queued_cols: usize,
    /// Columns claimed by workers but not yet answered.
    pub in_flight_cols: usize,
}

impl QueueDepth {
    /// Total outstanding columns (queued + in flight) — the scalar load
    /// figure shard routing ranks by.
    pub fn load(&self) -> usize {
        self.queued_cols + self.in_flight_cols
    }
}

/// A batched, multi-threaded inference runtime over a model registry.
///
/// # Examples
///
/// ```
/// use panacea_serve::{LayerSpec, ModelRegistry, PreparedModel, PrepareOptions, Runtime, RuntimeConfig};
/// use panacea_tensor::{dist::DistributionKind, seeded_rng, Matrix};
/// use std::sync::Arc;
///
/// let mut rng = seeded_rng(1);
/// let w = DistributionKind::Gaussian { mean: 0.0, std: 0.05 }.sample_matrix(8, 16, &mut rng);
/// let calib = DistributionKind::Gaussian { mean: 0.2, std: 0.5 }.sample_matrix(16, 32, &mut rng);
/// let registry = Arc::new(ModelRegistry::new());
/// registry.insert(
///     PreparedModel::prepare("fc", &[LayerSpec::unbiased(w)], &calib,
///                            PrepareOptions::default()).unwrap(),
/// );
/// let runtime = Runtime::start(Arc::clone(&registry), RuntimeConfig::default());
/// let payload = registry.get("fc").unwrap().quantize(&calib);
/// let out = runtime.infer("fc", payload).unwrap();
/// assert_eq!(out.payload.as_codes().unwrap().shape(), (8, 32));
/// ```
#[derive(Debug)]
pub struct Runtime {
    registry: Arc<ModelRegistry>,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Spawns the worker pool (at least one worker) over `registry`.
    pub fn start(registry: Arc<ModelRegistry>, config: RuntimeConfig) -> Self {
        Runtime::spawn(registry, config, Metrics::default())
    }

    /// [`start`](Self::start) with a dimensional metric registry:
    /// workers additionally record per-model windowed execute latency
    /// under (model, "batch", "execute").
    pub fn start_with_dims(
        registry: Arc<ModelRegistry>,
        config: RuntimeConfig,
        dims: panacea_telemetry::MetricRegistry,
    ) -> Self {
        Runtime::spawn(registry, config, Metrics::with_dims(dims))
    }

    /// [`start_with_dims`](Self::start_with_dims) plus a flight
    /// recorder: batch formations additionally land in the event ring.
    pub fn start_with_observability(
        registry: Arc<ModelRegistry>,
        config: RuntimeConfig,
        dims: panacea_telemetry::MetricRegistry,
        recorder: panacea_telemetry::FlightRecorder,
    ) -> Self {
        Runtime::spawn(
            registry,
            config,
            Metrics::with_observability(dims, recorder),
        )
    }

    fn spawn(registry: Arc<ModelRegistry>, config: RuntimeConfig, metrics: Metrics) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                in_flight_cols: 0,
                shutting_down: false,
            }),
            work_ready: Condvar::new(),
            policy: config.policy,
            metrics,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("panacea-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Runtime {
            registry,
            shared,
            workers,
        }
    }

    /// The registry this runtime resolves model names against.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Validates and enqueues a request, returning a handle the caller
    /// blocks on. Requests for the same model submitted close together
    /// ride the same batch.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for unregistered names, the
    /// validation errors of [`PreparedModel::validate`], and
    /// [`ServeError::ShuttingDown`] once shutdown has begun.
    pub fn submit(&self, model: &str, payload: impl Into<Payload>) -> Result<Pending, ServeError> {
        let resolved = self
            .registry
            .get(model)
            .ok_or_else(|| ServeError::UnknownModel {
                model: model.to_string(),
            })?;
        self.submit_to(resolved, payload)
    }

    /// [`submit`](Self::submit) with an already-resolved model handle —
    /// skips the registry lookup on hot paths.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](Self::submit), minus the name lookup.
    pub fn submit_to(
        &self,
        model: Arc<PreparedModel>,
        payload: impl Into<Payload>,
    ) -> Result<Pending, ServeError> {
        self.shared.submit_to(model, payload.into(), None, None)
    }

    /// [`submit_to`](Self::submit_to) carrying a [`TraceContext`]: the
    /// worker records `queue_wait` / `batch_form` / `execute` /
    /// `split_back` spans into the submitting request's trace.
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::submit_to`].
    pub fn submit_to_traced(
        &self,
        model: Arc<PreparedModel>,
        payload: impl Into<Payload>,
        ctx: Option<TraceContext>,
    ) -> Result<Pending, ServeError> {
        self.shared.submit_to(model, payload.into(), ctx, None)
    }

    /// [`submit_to_traced`](Self::submit_to_traced) with a deadline: if
    /// the request is still queued when `deadline` passes, it is dropped
    /// before the GEMM and answered [`ServeError::DeadlineExceeded`]; a
    /// deadline already in the past is rejected at submission. Lingering
    /// for batch companions never pushes the queue head past its own
    /// deadline.
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::submit_to`], plus
    /// [`ServeError::DeadlineExceeded`] when the deadline has already
    /// passed at submission.
    pub fn submit_to_traced_deadline(
        &self,
        model: Arc<PreparedModel>,
        payload: impl Into<Payload>,
        ctx: Option<TraceContext>,
        deadline: Option<Instant>,
    ) -> Result<Pending, ServeError> {
        self.shared.submit_to(model, payload.into(), ctx, deadline)
    }

    /// Submits and blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](Self::submit), plus [`ServeError::WorkerLost`]
    /// if the runtime dies before answering.
    pub fn infer(
        &self,
        model: &str,
        payload: impl Into<Payload>,
    ) -> Result<InferenceOutput, ServeError> {
        self.submit(model, payload)?.wait()
    }

    /// Current aggregate metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Per-stage latency histograms (`queue_wait`, `batch_form`,
    /// `execute`, `split_back`), nanosecond samples.
    pub fn stage_snapshots(&self) -> Vec<(&'static str, panacea_telemetry::HistogramSnapshot)> {
        self.shared.metrics.stage_snapshots()
    }

    /// Snapshot of the queued and in-flight work — what a shard router
    /// ranks runtimes by.
    pub fn queue_depth(&self) -> QueueDepth {
        self.shared.queue_depth()
    }

    /// A cloneable, submission-capable handle onto this runtime.
    ///
    /// The handle shares the queue and registry but not the worker
    /// threads, so it can be handed to connection handlers or pollers
    /// without tying the runtime's lifetime to theirs. Once the owning
    /// [`Runtime`] shuts down, submissions through any handle fail with
    /// [`ServeError::ShuttingDown`].
    pub fn handle(&self) -> RuntimeHandle {
        RuntimeHandle {
            registry: Arc::clone(&self.registry),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops accepting new requests, drains every queued request, and
    /// joins all workers. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("queue lock poisoned");
            if st.shutting_down {
                return; // already shut down; workers vec is drained
            }
            st.shutting_down = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A cloneable handle onto a [`Runtime`]: submit, poll metrics and queue
/// depth — everything except lifecycle control (shutdown stays with the
/// owning `Runtime`). Obtained from [`Runtime::handle`].
#[derive(Debug, Clone)]
pub struct RuntimeHandle {
    registry: Arc<ModelRegistry>,
    shared: Arc<Shared>,
}

impl RuntimeHandle {
    /// The registry this handle resolves model names against.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Validates and enqueues a request — see [`Runtime::submit`].
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::submit`].
    pub fn submit(&self, model: &str, payload: impl Into<Payload>) -> Result<Pending, ServeError> {
        let resolved = self
            .registry
            .get(model)
            .ok_or_else(|| ServeError::UnknownModel {
                model: model.to_string(),
            })?;
        self.shared.submit_to(resolved, payload.into(), None, None)
    }

    /// [`submit`](Self::submit) with an already-resolved model handle.
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::submit_to`].
    pub fn submit_to(
        &self,
        model: Arc<PreparedModel>,
        payload: impl Into<Payload>,
    ) -> Result<Pending, ServeError> {
        self.shared.submit_to(model, payload.into(), None, None)
    }

    /// [`submit_to`](Self::submit_to) carrying a [`TraceContext`] — see
    /// [`Runtime::submit_to_traced`].
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::submit_to`].
    pub fn submit_to_traced(
        &self,
        model: Arc<PreparedModel>,
        payload: impl Into<Payload>,
        ctx: Option<TraceContext>,
    ) -> Result<Pending, ServeError> {
        self.shared.submit_to(model, payload.into(), ctx, None)
    }

    /// [`submit_to_traced`](Self::submit_to_traced) with a deadline —
    /// see [`Runtime::submit_to_traced_deadline`].
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::submit_to_traced_deadline`].
    pub fn submit_to_traced_deadline(
        &self,
        model: Arc<PreparedModel>,
        payload: impl Into<Payload>,
        ctx: Option<TraceContext>,
        deadline: Option<Instant>,
    ) -> Result<Pending, ServeError> {
        self.shared.submit_to(model, payload.into(), ctx, deadline)
    }

    /// Submits and blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::infer`].
    pub fn infer(
        &self,
        model: &str,
        payload: impl Into<Payload>,
    ) -> Result<InferenceOutput, ServeError> {
        self.submit(model, payload)?.wait()
    }

    /// Current aggregate metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Snapshot of the queued and in-flight work.
    pub fn queue_depth(&self) -> QueueDepth {
        self.shared.queue_depth()
    }
}

/// A pending response handle.
///
/// Dropping it cancels the request if it is still queued: workers purge
/// abandoned jobs instead of computing answers nobody is waiting for.
/// A request already claimed into a batch completes normally (its
/// response is simply discarded), so cancellation never tears work out
/// from under a worker.
#[derive(Debug)]
pub struct Pending {
    rx: mpsc::Receiver<Result<InferenceOutput, ServeError>>,
    /// Shared with the queued [`Job`]; set on drop.
    cancelled: Arc<AtomicBool>,
    /// Wakes workers on cancellation so a lingering batch window does
    /// not keep an abandoned job queued. Weak: a response handle must
    /// not keep a shut-down runtime's state alive.
    shared: Weak<Shared>,
}

impl Drop for Pending {
    fn drop(&mut self) {
        self.cancelled.store(true, Ordering::Release);
        // The queue holds the only other handle on the flag, so a strong
        // count above one means the job may still be queued and a worker
        // should wake to purge it. After execution (the common case) the
        // count is one and the wakeup is skipped.
        if Arc::strong_count(&self.cancelled) > 1 {
            if let Some(shared) = self.shared.upgrade() {
                // Passing through the queue lock between the store and
                // the notify closes the lost-wakeup window: a worker
                // that purged before the store cannot yet be parked (it
                // still holds the lock), so by the time this acquires
                // the lock it is either parked (and will get the
                // notify) or will re-purge and see the flag. No expect:
                // a poisoned lock means workers died; nothing to wake.
                if let Ok(guard) = shared.state.lock() {
                    drop(guard);
                    shared.work_ready.notify_all();
                }
            }
        }
    }
}

impl Pending {
    /// Blocks until the batched result for this request arrives.
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerLost`] if the runtime terminated without
    /// answering (it never does under clean shutdown, which drains the
    /// queue first); [`ServeError::DeadlineExceeded`] if the request's
    /// deadline expired while queued; [`ServeError::Internal`] if the
    /// executing worker caught a panic.
    pub fn wait(self) -> Result<InferenceOutput, ServeError> {
        match self.rx.recv() {
            Ok(answer) => answer,
            Err(_) => Err(ServeError::WorkerLost),
        }
    }

    /// Non-blocking poll: `Ok(None)` while the batch is still in flight.
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerLost`] if the runtime terminated without
    /// answering — distinct from "not ready yet", so a polling loop can
    /// stop instead of spinning forever. Also surfaces the worker's own
    /// answer errors (`DeadlineExceeded`, `Internal`).
    pub fn try_wait(&self) -> Result<Option<InferenceOutput>, ServeError> {
        match self.rx.try_recv() {
            Ok(answer) => answer.map(Some),
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => Err(ServeError::WorkerLost),
        }
    }

    /// Blocks up to `timeout` for the response: `Ok(None)` if it did not
    /// arrive in time (the request stays queued and this handle stays
    /// valid, so the caller may wait again — or drop the handle, which
    /// cancels the request if a worker has not yet claimed it).
    ///
    /// This is the bounded wait an admission layer uses to shed slow
    /// requests without spin-looping on [`try_wait`](Self::try_wait).
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerLost`] if the runtime terminated without
    /// answering.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Option<InferenceOutput>, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(answer) => answer.map(Some),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::WorkerLost),
        }
    }
}

fn worker_loop(shared: &Shared) {
    // Under the queue lock: drop jobs whose caller stopped waiting (so
    // overload shedding cannot leave the queue growing without bound)
    // and jobs whose deadline has already expired (answered
    // `DeadlineExceeded` before any GEMM work is spent on them).
    let purge = |st: &mut State| {
        let n = purge_cancelled(&mut st.queue);
        if n > 0 {
            shared.metrics.record_cancelled(n);
        }
        let e = purge_expired(&mut st.queue, Instant::now());
        if e > 0 {
            shared.metrics.record_expired(e);
        }
    };
    let mut st = shared.state.lock().expect("queue lock poisoned");
    loop {
        purge(&mut st);
        // Idle: wait for work or for shutdown with an empty queue.
        while st.queue.is_empty() {
            if st.shutting_down {
                return;
            }
            st = shared.work_ready.wait(st).expect("queue lock poisoned");
            purge(&mut st);
        }

        // Linger until the head model's columns fill the budget, the
        // head request's deadline passes, another model queues up behind
        // the head (lingering would head-of-line-block it), or shutdown
        // forces dispatch.
        let form_started = Instant::now();
        loop {
            if st.shutting_down
                || head_model_cols(&st.queue) >= shared.policy.max_batch
                || !queue_is_single_model(&st.queue)
            {
                break;
            }
            let deadline = match st.queue.front() {
                // Lingering for companions must never push the head past
                // its own deadline.
                Some(head) => head_dispatch_deadline(head, shared.policy.max_wait),
                // Another worker drained the queue while we lingered.
                None => break,
            };
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = shared
                .work_ready
                .wait_timeout(st, deadline - now)
                .expect("queue lock poisoned");
            st = guard;
            purge(&mut st);
            if timeout.timed_out() {
                break;
            }
        }

        // Last-instant expiry check: a head whose deadline elapsed during
        // the linger is answered `DeadlineExceeded`, not executed late.
        purge(&mut st);
        let Some(batch) = take_batch(&mut st.queue, shared.policy.max_batch) else {
            continue;
        };
        shared.metrics.record_batch_form(form_started.elapsed());
        let form_done = Instant::now();
        for job in &batch.jobs {
            if let Some(ctx) = &job.ctx {
                ctx.record_span("batch_form", form_started, form_done);
            }
        }
        let batch_cols: usize = batch.jobs.iter().map(|j| j.payload.cols()).sum();
        st.in_flight_cols += batch_cols;
        drop(st);
        // If the batch left same-model stragglers (over budget) or other
        // models queued, make sure an idle sibling picks them up.
        shared.work_ready.notify_one();
        execute(batch, &shared.metrics);
        st = shared.state.lock().expect("queue lock poisoned");
        st.in_flight_cols -= batch_cols;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LayerSpec, PrepareOptions};
    use panacea_tensor::dist::DistributionKind;
    use panacea_tensor::Matrix;
    use std::time::Duration;

    fn registry_with(names: &[&str], seed: u64) -> Arc<ModelRegistry> {
        let mut rng = panacea_tensor::seeded_rng(seed);
        let registry = Arc::new(ModelRegistry::new());
        for name in names {
            let w = DistributionKind::Gaussian {
                mean: 0.0,
                std: 0.05,
            }
            .sample_matrix(8, 16, &mut rng);
            let calib = DistributionKind::Gaussian {
                mean: 0.2,
                std: 0.5,
            }
            .sample_matrix(16, 16, &mut rng);
            registry.insert(
                PreparedModel::prepare(
                    *name,
                    &[LayerSpec::unbiased(w)],
                    &calib,
                    PrepareOptions::default(),
                )
                .expect("prepare"),
            );
        }
        registry
    }

    fn codes_for(model: &PreparedModel, cols: usize, salt: usize) -> Matrix<i32> {
        Matrix::from_fn(model.in_features(), cols, |r, c| {
            ((r * 31 + c * 7 + salt * 13) % 200) as i32
        })
    }

    #[test]
    fn single_request_round_trips() {
        let registry = registry_with(&["m"], 1);
        let runtime = Runtime::start(Arc::clone(&registry), RuntimeConfig::default());
        let model = registry.get("m").expect("registered");
        let codes = codes_for(&model, 4, 0);
        let (expect, _) = model.forward_codes(&codes);
        let out = runtime.infer("m", codes).expect("served");
        assert_eq!(out.payload, expect.into());
        assert!(out.latency > Duration::ZERO);
        assert_eq!(runtime.metrics().requests, 1);
    }

    #[test]
    fn try_wait_polls_until_the_answer_lands() {
        let registry = registry_with(&["m"], 9);
        let runtime = Runtime::start(Arc::clone(&registry), RuntimeConfig::default());
        let model = registry.get("m").expect("registered");
        let codes = codes_for(&model, 4, 1);
        let (expect, _) = model.forward_codes(&codes);
        let pending = runtime.submit("m", codes).expect("queued");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let out = loop {
            match pending.try_wait().expect("runtime alive") {
                Some(out) => break out,
                None => {
                    assert!(std::time::Instant::now() < deadline, "poll timed out");
                    thread::yield_now();
                }
            }
        };
        assert_eq!(out.payload, expect.into());
    }

    #[test]
    fn mixed_models_are_not_head_of_line_blocked() {
        let registry = registry_with(&["a", "b"], 10);
        // A long linger relative to compute: if lingering ignored the mix
        // of models, model A's batch would sit the full max_wait.
        let runtime = Runtime::start(
            Arc::clone(&registry),
            RuntimeConfig {
                workers: 2,
                policy: BatchPolicy {
                    max_batch: 64,
                    max_wait: Duration::from_secs(5),
                },
            },
        );
        let a = registry.get("a").expect("registered");
        let b = registry.get("b").expect("registered");
        let pa = runtime
            .submit_to(Arc::clone(&a), codes_for(&a, 1, 0))
            .expect("queued");
        let pb = runtime
            .submit_to(Arc::clone(&b), codes_for(&b, 1, 1))
            .expect("queued");
        // Queueing model B behind model A must cut A's linger short —
        // far below the 5s deadline a head-of-line block would cost.
        let out_a = pa.wait().expect("model A served");
        assert!(
            out_a.latency < Duration::from_millis(2500),
            "model A head-of-line blocked for {:?}",
            out_a.latency
        );
        // B, now alone in the queue, may linger up to its own deadline;
        // it must still be answered (here: promptly, since A's dispatch
        // leaves an idle worker and B's linger ends at its deadline at
        // the latest).
        assert!(pb.wait().is_ok());
        assert_eq!(runtime.metrics().requests, 2);
    }

    #[test]
    fn unknown_model_and_bad_codes_rejected() {
        let registry = registry_with(&["m"], 2);
        let runtime = Runtime::start(Arc::clone(&registry), RuntimeConfig::default());
        assert!(matches!(
            runtime.infer("ghost", Matrix::<i32>::zeros(16, 1)),
            Err(ServeError::UnknownModel { .. })
        ));
        assert!(matches!(
            runtime.infer("m", Matrix::<i32>::zeros(3, 1)),
            Err(ServeError::Shape {
                expected: 16,
                actual: 3
            })
        ));
    }

    #[test]
    fn concurrent_requests_all_answered_bit_exactly() {
        let registry = registry_with(&["a", "b"], 3);
        let runtime = Arc::new(Runtime::start(
            Arc::clone(&registry),
            RuntimeConfig {
                workers: 4,
                policy: BatchPolicy {
                    max_batch: 16,
                    max_wait: Duration::from_millis(1),
                },
            },
        ));
        let mut threads = Vec::new();
        for t in 0..8 {
            let runtime = Arc::clone(&runtime);
            let registry = Arc::clone(&registry);
            threads.push(thread::spawn(move || {
                let name = if t % 2 == 0 { "a" } else { "b" };
                let model = registry.get(name).expect("registered");
                let codes = codes_for(&model, 1 + t % 3, t);
                let (expect, _) = model.forward_codes(&codes);
                let out = runtime.infer(name, codes).expect("served");
                assert_eq!(out.payload, expect.into(), "thread {t} got a wrong answer");
            }));
        }
        for th in threads {
            th.join().expect("request thread");
        }
        let m = runtime.metrics();
        assert_eq!(m.requests, 8);
        assert!(m.batches <= 8);
    }

    #[test]
    fn batching_coalesces_under_load() {
        let registry = registry_with(&["m"], 4);
        // One worker + generous linger ⇒ queued singles must coalesce.
        let runtime = Runtime::start(
            Arc::clone(&registry),
            RuntimeConfig {
                workers: 1,
                policy: BatchPolicy {
                    max_batch: 8,
                    max_wait: Duration::from_millis(50),
                },
            },
        );
        let model = registry.get("m").expect("registered");
        let pending: Vec<Pending> = (0..8)
            .map(|i| {
                runtime
                    .submit_to(Arc::clone(&model), codes_for(&model, 1, i))
                    .expect("queued")
            })
            .collect();
        for p in pending {
            let out = p.wait().expect("served");
            assert!(out.batched_cols >= 1);
        }
        let m = runtime.metrics();
        assert_eq!(m.requests, 8);
        assert!(
            m.batches < 8,
            "8 lingering singles should share batches, got {} batches",
            m.batches
        );
        assert!(m.widest_batch >= 2);
    }

    #[test]
    fn metrics_snapshots_are_monotone_under_concurrent_submits() {
        let registry = registry_with(&["m"], 12);
        let runtime = Arc::new(Runtime::start(
            Arc::clone(&registry),
            RuntimeConfig {
                workers: 2,
                policy: BatchPolicy {
                    max_batch: 8,
                    max_wait: Duration::from_millis(1),
                },
            },
        ));
        let model = registry.get("m").expect("registered");
        // A poller racing the submitters: every counter in a later
        // snapshot must dominate the earlier one — a torn or decreasing
        // reading would make dashboards lie under load.
        let stop = Arc::new(AtomicBool::new(false));
        let poller = {
            let runtime = Arc::clone(&runtime);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut last = MetricsSnapshot::default();
                while !stop.load(Ordering::Acquire) {
                    let s = runtime.metrics();
                    assert!(s.requests >= last.requests, "requests decreased");
                    assert!(s.batches >= last.batches, "batches decreased");
                    assert!(s.columns >= last.columns, "columns decreased");
                    assert!(s.padded_cols >= last.padded_cols, "padding decreased");
                    assert!(s.cancelled >= last.cancelled, "cancelled decreased");
                    assert!(s.compute_time >= last.compute_time, "compute decreased");
                    assert!(s.max_latency >= last.max_latency, "max latency decreased");
                    assert!(s.widest_batch >= last.widest_batch, "widest batch shrank");
                    last = s;
                    thread::yield_now();
                }
            })
        };
        let mut submitters = Vec::new();
        for t in 0..4usize {
            let runtime = Arc::clone(&runtime);
            let model = Arc::clone(&model);
            submitters.push(thread::spawn(move || {
                for i in 0..25usize {
                    runtime
                        .submit_to(Arc::clone(&model), codes_for(&model, 1 + (t + i) % 3, i))
                        .expect("queued")
                        .wait()
                        .expect("served");
                }
            }));
        }
        for th in submitters {
            th.join().expect("submitter");
        }
        stop.store(true, Ordering::Release);
        poller.join().expect("poller saw a non-monotone snapshot");
        assert_eq!(runtime.metrics().requests, 100);
    }

    #[test]
    fn dropping_pending_cancels_queued_work() {
        let registry = registry_with(&["m"], 11);
        // One worker with a generous linger: the head request waits for
        // companions, giving the abandoned one time to be purged.
        let runtime = Runtime::start(
            Arc::clone(&registry),
            RuntimeConfig {
                workers: 1,
                policy: BatchPolicy {
                    max_batch: 64,
                    max_wait: Duration::from_millis(150),
                },
            },
        );
        let model = registry.get("m").expect("registered");
        let kept = runtime
            .submit_to(Arc::clone(&model), codes_for(&model, 1, 0))
            .expect("queued");
        let abandoned = runtime
            .submit_to(Arc::clone(&model), codes_for(&model, 1, 1))
            .expect("queued");
        drop(abandoned);
        let out = kept.wait().expect("served");
        assert_eq!(
            out.batched_cols, 1,
            "cancelled request rode the dispatched batch"
        );
        let m = runtime.metrics();
        assert_eq!(m.requests, 1, "cancelled request was executed");
        assert_eq!(m.cancelled, 1);
    }

    #[test]
    fn shutdown_is_idempotent_and_joins_workers() {
        let registry = registry_with(&["m"], 5);
        let mut runtime = Runtime::start(registry, RuntimeConfig::default());
        runtime.shutdown();
        runtime.shutdown();
        assert!(matches!(
            runtime.submit("m", Matrix::<i32>::zeros(16, 1)),
            Err(ServeError::UnknownModel { .. }) | Err(ServeError::ShuttingDown)
        ));
    }
}
