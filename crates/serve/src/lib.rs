//! `panacea-serve` — a batched, multi-threaded AQS inference runtime.
//!
//! The rest of the workspace reproduces the Panacea paper's *algorithms*:
//! asymmetric quantization, bit-slice compression, and the AQS-GEMM that
//! executes one layer for one caller. This crate adds the *serving* layer
//! a production deployment needs, exploiting two structural properties of
//! the AQS flow:
//!
//! 1. **Preparation amortizes.** Weight slicing, calibration, ZPM/DBS and
//!    zero-point folding are expensive but happen once per model. A
//!    [`PreparedModel`] is immutable after preparation and is shared
//!    across threads by [`ModelRegistry`] behind an [`Arc`](std::sync::Arc).
//! 2. **Width amortizes.** AQS-GEMM's per-tile preparation is amortized
//!    over the `N` dimension, and the GEMM is element-exact under any
//!    column grouping — so independent requests can be coalesced into one
//!    wide call and split back **bit-exactly**. The [`Runtime`]'s workers
//!    do precisely that, governed by [`BatchPolicy`]'s `max_batch` column
//!    budget and `max_wait` linger.
//!
//! ```text
//!  submit()──▶ queue ──▶ worker: linger ≤ max_wait, coalesce ≤ max_batch
//!                          │ hstack columns      (same PreparedModel)
//!                          ▼
//!                    AQS-GEMM chain  ──▶ split_cols ──▶ per-request reply
//! ```
//!
//! Shutdown is clean by construction: dropping the [`Runtime`] stops
//! intake, drains every accepted request, and joins all workers.

pub mod batch;
pub mod metrics;
pub mod model;
pub mod runtime;
#[doc(hidden)]
pub mod testutil;

use std::fmt;
use std::time::Duration;

use panacea_core::pipeline::PipelineError;
use panacea_core::Workload;
use panacea_tensor::Matrix;

pub use batch::BatchPolicy;
pub use metrics::{Metrics, MetricsSnapshot};
pub use model::{
    f32_bits_decode, f32_bits_encode, LayerSpec, ModelRegistry, PrepareOptions, PreparedModel,
};
pub use runtime::{Pending, QueueDepth, Runtime, RuntimeConfig, RuntimeHandle};

/// A completed request: the final integer accumulators plus serving
/// telemetry.
#[derive(Debug, Clone)]
pub struct InferenceOutput {
    /// Final-layer accumulators for this request's columns (`M × N_req`),
    /// bit-identical to running the request alone. For transformer-block
    /// models this holds the output hidden states as raw f32 bit
    /// patterns (see [`f32_bits`](Self::f32_bits)).
    pub acc: Matrix<i32>,
    /// Scale converting `acc` to floats (`acc · scale ≈ W·x + b`);
    /// `1.0` and unused when [`f32_bits`](Self::f32_bits) is set.
    pub scale: f64,
    /// `true` when `acc` carries f32 bit patterns (transformer-block
    /// models) rather than integer accumulators — the domain switch
    /// [`to_f32`](Self::to_f32) keys on.
    pub f32_bits: bool,
    /// AQS workload of the *whole* batch this request rode in.
    pub workload: Workload,
    /// Total columns in that batch (≥ this request's columns).
    pub batched_cols: usize,
    /// Queue-to-response latency for this request.
    pub latency: Duration,
}

impl InferenceOutput {
    /// The float view of the result: dequantized accumulators for linear
    /// chains, bit-reinterpreted hidden states for block models.
    pub fn to_f32(&self) -> Matrix<f32> {
        if self.f32_bits {
            f32_bits_decode(&self.acc)
        } else {
            self.acc.map(|&v| (f64::from(v) * self.scale) as f32)
        }
    }
}

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// The requested model name is not registered.
    UnknownModel {
        /// The name that failed to resolve.
        model: String,
    },
    /// A model was prepared with zero layers.
    EmptyModel {
        /// The offending model name.
        model: String,
    },
    /// Feature-dimension mismatch (layer chain or request codes).
    Shape {
        /// Expected feature count.
        expected: usize,
        /// Provided feature count.
        actual: usize,
    },
    /// A request carried zero activation columns.
    EmptyRequest,
    /// A layer's output rows are not a multiple of the PE array's vector
    /// width, so the accelerator model cannot execute it.
    UnalignedRows {
        /// The offending row count.
        rows: usize,
    },
    /// Request codes exceed the model's calibrated activation format.
    CodesOutOfRange {
        /// Largest representable code.
        max: i32,
    },
    /// A block-model request carried NaN or infinite hidden-state
    /// elements (block inputs are f32 and must be finite).
    NonFiniteInput,
    /// The request used the wrong entry point for the model's kind —
    /// code-domain inference on a transformer-block model, or a block
    /// request against a linear chain.
    ModelKindMismatch {
        /// The model that was addressed.
        model: String,
        /// Whether that model is a transformer-block model.
        model_is_block: bool,
    },
    /// The admission layer shed this request instead of queueing it
    /// unboundedly: either the in-flight limit was reached or the
    /// queue-wait bound elapsed before a worker answered.
    Overloaded {
        /// Which admission bound rejected the request.
        reason: OverloadReason,
    },
    /// The runtime is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The runtime terminated before answering (never happens under
    /// clean shutdown, which drains the queue).
    WorkerLost,
    /// Quantization/slicing failed during model preparation.
    Pipeline(PipelineError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel { model } => write!(f, "unknown model {model:?}"),
            ServeError::EmptyModel { model } => {
                write!(f, "model {model:?} has no layers")
            }
            ServeError::Shape { expected, actual } => {
                write!(
                    f,
                    "feature dimension mismatch: expected {expected}, got {actual}"
                )
            }
            ServeError::EmptyRequest => write!(f, "request has zero activation columns"),
            ServeError::UnalignedRows { rows } => {
                write!(
                    f,
                    "layer output rows {rows} must be a multiple of the PE vector width"
                )
            }
            ServeError::CodesOutOfRange { max } => {
                write!(f, "request codes exceed the calibrated format (max {max})")
            }
            ServeError::NonFiniteInput => {
                write!(f, "block request contains NaN or infinite hidden states")
            }
            ServeError::ModelKindMismatch {
                model,
                model_is_block,
            } => {
                if *model_is_block {
                    write!(
                        f,
                        "model {model:?} serves transformer blocks; use the block entry point"
                    )
                } else {
                    write!(
                        f,
                        "model {model:?} is a linear chain, not a transformer-block model"
                    )
                }
            }
            ServeError::Overloaded { reason } => write!(f, "overloaded: {reason}"),
            ServeError::ShuttingDown => write!(f, "runtime is shutting down"),
            ServeError::WorkerLost => write!(f, "runtime terminated before answering"),
            ServeError::Pipeline(e) => write!(f, "model preparation failed: {e}"),
        }
    }
}

/// Which admission bound caused a [`ServeError::Overloaded`] rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadReason {
    /// The maximum number of simultaneously admitted requests was
    /// reached; shedding keeps queueing bounded under a burst.
    InFlight {
        /// The configured in-flight limit that was hit.
        limit: usize,
    },
    /// The request was admitted and queued but no worker answered within
    /// the queue-wait bound; the caller was released rather than left
    /// waiting (the runtime still completes the work it accepted).
    QueueWait {
        /// The bound that elapsed.
        waited: Duration,
    },
}

impl fmt::Display for OverloadReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverloadReason::InFlight { limit } => {
                write!(f, "in-flight limit {limit} reached")
            }
            OverloadReason::QueueWait { waited } => {
                write!(f, "queue wait exceeded {waited:?}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        ServeError::Pipeline(e)
    }
}
