//! `panacea-serve` — a batched, multi-threaded AQS inference runtime.
//!
//! The rest of the workspace reproduces the Panacea paper's *algorithms*:
//! asymmetric quantization, bit-slice compression, and the AQS-GEMM that
//! executes one layer for one caller. This crate adds the *serving* layer
//! a production deployment needs, exploiting two structural properties of
//! the AQS flow:
//!
//! 1. **Preparation amortizes.** Weight slicing, calibration, ZPM/DBS and
//!    zero-point folding are expensive but happen once per model. A
//!    [`PreparedModel`] is immutable after preparation and is shared
//!    across threads by [`ModelRegistry`] behind an [`Arc`](std::sync::Arc).
//! 2. **Width amortizes.** AQS-GEMM's per-tile preparation is amortized
//!    over the `N` dimension, and the GEMM is element-exact under any
//!    column grouping — so independent requests can be coalesced into one
//!    wide call and split back **bit-exactly**. The [`Runtime`]'s workers
//!    do precisely that, governed by [`BatchPolicy`]'s `max_batch` column
//!    budget and `max_wait` linger.
//!
//! ```text
//!  submit()──▶ queue ──▶ worker: linger ≤ max_wait, coalesce ≤ max_batch
//!                          │ hstack columns      (same PreparedModel)
//!                          ▼
//!                    AQS-GEMM chain  ──▶ split_cols ──▶ per-request reply
//! ```
//!
//! Shutdown is clean by construction: dropping the [`Runtime`] stops
//! intake, drains every accepted request, and joins all workers.

pub mod batch;
pub mod decode_batch;
pub mod metrics;
pub mod model;
pub mod payload;
pub mod runtime;
pub mod session;
#[doc(hidden)]
pub mod testutil;

use std::fmt;
use std::time::Duration;

use panacea_core::pipeline::PipelineError;
use panacea_core::Workload;
use panacea_tensor::Matrix;

pub use batch::BatchPolicy;
pub use decode_batch::DecodeBatcher;
pub use metrics::{Metrics, MetricsSnapshot};
pub use model::{LayerSpec, ModelRegistry, PrepareOptions, PreparedModel};
pub use payload::{Payload, PayloadKind};
pub use runtime::{Pending, QueueDepth, Runtime, RuntimeConfig, RuntimeHandle};
pub use session::{SessionConfig, SessionManager, SessionStats};

/// A completed request: the typed result payload plus serving telemetry.
#[derive(Debug, Clone)]
pub struct InferenceOutput {
    /// The result for this request's columns, bit-identical to running
    /// the request alone: final-layer integer accumulators
    /// ([`Payload::Codes`], `M × N_req`) for linear chains, output
    /// hidden states ([`Payload::Hidden`]) for transformer-block models.
    pub payload: Payload,
    /// Scale converting code accumulators to floats
    /// (`acc · scale ≈ W·x + b`); `1.0` and unused for
    /// [`Payload::Hidden`] results.
    pub scale: f64,
    /// AQS workload of the *whole* batch this request rode in.
    pub workload: Workload,
    /// Total columns in that batch (≥ this request's columns).
    pub batched_cols: usize,
    /// Queue-to-response latency for this request.
    pub latency: Duration,
}

impl InferenceOutput {
    /// The float view of the result: dequantized accumulators for linear
    /// chains, the hidden states themselves for block models.
    pub fn to_f32(&self) -> Matrix<f32> {
        match &self.payload {
            Payload::Codes(acc) => acc.map(|&v| (f64::from(v) * self.scale) as f32),
            Payload::Hidden(h) => h.clone(),
        }
    }
}

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// The requested model name is not registered.
    UnknownModel {
        /// The name that failed to resolve.
        model: String,
    },
    /// A model was prepared with zero layers.
    EmptyModel {
        /// The offending model name.
        model: String,
    },
    /// Feature-dimension mismatch (layer chain or request codes).
    Shape {
        /// Expected feature count.
        expected: usize,
        /// Provided feature count.
        actual: usize,
    },
    /// A request carried zero activation columns.
    EmptyRequest,
    /// A layer's output rows are not a multiple of the PE array's vector
    /// width, so the accelerator model cannot execute it.
    UnalignedRows {
        /// The offending row count.
        rows: usize,
    },
    /// Request codes exceed the model's calibrated activation format.
    CodesOutOfRange {
        /// Largest representable code.
        max: i32,
    },
    /// A block-model request carried NaN or infinite hidden-state
    /// elements (block inputs are f32 and must be finite).
    NonFiniteInput,
    /// The request's payload domain does not match the model's kind —
    /// activation codes sent to a transformer-block model, or hidden
    /// states sent to a linear chain. Also raised when a decode session
    /// is opened on a chain model (sessions hold block KV state).
    PayloadKindMismatch {
        /// The model that was addressed.
        model: String,
        /// Whether that model is a transformer-block model.
        model_is_block: bool,
    },
    /// The addressed decode session does not exist on this runtime —
    /// never opened, already closed, or evicted (idle timeout or KV byte
    /// budget). The caller must open a fresh session and replay its
    /// prefix.
    UnknownSession {
        /// The session id that failed to resolve.
        session: u64,
    },
    /// Admitting this decode step would exceed the session manager's KV
    /// byte budget and no idle session could be evicted to make room.
    /// Retryable once other sessions close or go idle.
    KvBudgetExceeded {
        /// Bytes the cache would hold after this step.
        needed: usize,
        /// The configured budget.
        budget: usize,
    },
    /// The admission layer shed this request instead of queueing it
    /// unboundedly: either the in-flight limit was reached or the
    /// queue-wait bound elapsed before a worker answered.
    Overloaded {
        /// Which admission bound rejected the request.
        reason: OverloadReason,
    },
    /// The runtime is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The runtime terminated before answering (never happens under
    /// clean shutdown, which drains the queue).
    WorkerLost,
    /// The request's deadline expired before it could execute; the work
    /// was dropped (at the queue, before the GEMM) and the caller
    /// released. Retry with a fresh deadline if the result still
    /// matters.
    DeadlineExceeded,
    /// A worker caught a panic while executing this request. The worker
    /// survived (panic isolation), the caller is answered instead of
    /// abandoned, and any decode session whose state the panic may have
    /// corrupted has been evicted.
    Internal {
        /// Where the panic was caught (e.g. `worker_execute`,
        /// `decode_fused_pass`).
        at: &'static str,
    },
    /// Quantization/slicing failed during model preparation.
    Pipeline(PipelineError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel { model } => write!(f, "unknown model {model:?}"),
            ServeError::EmptyModel { model } => {
                write!(f, "model {model:?} has no layers")
            }
            ServeError::Shape { expected, actual } => {
                write!(
                    f,
                    "feature dimension mismatch: expected {expected}, got {actual}"
                )
            }
            ServeError::EmptyRequest => write!(f, "request has zero activation columns"),
            ServeError::UnalignedRows { rows } => {
                write!(
                    f,
                    "layer output rows {rows} must be a multiple of the PE vector width"
                )
            }
            ServeError::CodesOutOfRange { max } => {
                write!(f, "request codes exceed the calibrated format (max {max})")
            }
            ServeError::NonFiniteInput => {
                write!(f, "block request contains NaN or infinite hidden states")
            }
            ServeError::PayloadKindMismatch {
                model,
                model_is_block,
            } => {
                if *model_is_block {
                    write!(
                        f,
                        "model {model:?} serves transformer blocks; send hidden states, not codes"
                    )
                } else {
                    write!(
                        f,
                        "model {model:?} is a linear chain; send activation codes, not hidden states"
                    )
                }
            }
            ServeError::UnknownSession { session } => {
                write!(
                    f,
                    "decode session {session} does not exist (closed or evicted)"
                )
            }
            ServeError::KvBudgetExceeded { needed, budget } => {
                write!(
                    f,
                    "KV cache budget exceeded: step needs {needed} bytes, budget is {budget}"
                )
            }
            ServeError::Overloaded { reason } => write!(f, "overloaded: {reason}"),
            ServeError::ShuttingDown => write!(f, "runtime is shutting down"),
            ServeError::WorkerLost => write!(f, "runtime terminated before answering"),
            ServeError::DeadlineExceeded => {
                write!(f, "deadline expired before the request executed")
            }
            ServeError::Internal { at } => {
                write!(f, "internal failure: a worker panicked during {at}")
            }
            ServeError::Pipeline(e) => write!(f, "model preparation failed: {e}"),
        }
    }
}

/// Which admission bound caused a [`ServeError::Overloaded`] rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadReason {
    /// The maximum number of simultaneously admitted requests was
    /// reached; shedding keeps queueing bounded under a burst.
    InFlight {
        /// The configured in-flight limit that was hit.
        limit: usize,
    },
    /// The request was admitted and queued but no worker answered within
    /// the queue-wait bound; the caller was released rather than left
    /// waiting (the runtime still completes the work it accepted).
    QueueWait {
        /// The bound that elapsed.
        waited: Duration,
    },
}

impl fmt::Display for OverloadReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverloadReason::InFlight { limit } => {
                write!(f, "in-flight limit {limit} reached")
            }
            OverloadReason::QueueWait { waited } => {
                write!(f, "queue wait exceeded {waited:?}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        ServeError::Pipeline(e)
    }
}
