//! Dynamic batching: coalescing queued requests into one wide GEMM.
//!
//! AQS-GEMM amortizes its per-tile preparation (slice loading, RLE
//! decode, compensation setup) over the `N` dimension, so serving
//! throughput grows when independent requests' activation columns ride in
//! one call. The batcher groups queued jobs that target the *same*
//! prepared model (pointer identity, so a re-registered model never mixes
//! with its predecessor) up to a column budget, and the executor splits
//! the accumulators back per request — bit-exactly, because the GEMM is
//! element-exact under any column grouping.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use panacea_bitslice::VECTOR_LEN;
use panacea_telemetry::TraceContext;

use crate::metrics::Metrics;
use crate::model::PreparedModel;
use crate::{InferenceOutput, Payload, ServeError};

/// Batching policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Column budget per batch: a batch closes once the coalesced
    /// requests reach this many activation columns.
    pub max_batch: usize,
    /// How long the oldest queued request may wait for companions before
    /// the batch is dispatched anyway.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// One queued request: its typed payload, the resolved model handle,
/// the response channel, and the enqueue timestamp latency is measured
/// from.
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) model: Arc<PreparedModel>,
    pub(crate) payload: Payload,
    pub(crate) responder: mpsc::Sender<Result<InferenceOutput, ServeError>>,
    pub(crate) enqueued_at: Instant,
    /// When present, the job is dropped (answered `DeadlineExceeded`)
    /// if it is still queued past this instant — expired work never
    /// reaches the GEMM.
    pub(crate) deadline: Option<Instant>,
    /// Set by the caller's dropped `Pending` handle; workers drop the
    /// job instead of executing it. Shared with the `Pending`.
    pub(crate) cancelled: Arc<AtomicBool>,
    /// When present, the worker records `queue_wait` / `batch_form` /
    /// `execute` / `split_back` spans into the submitting request's
    /// trace before answering.
    pub(crate) ctx: Option<TraceContext>,
}

/// A dispatchable group of same-model jobs.
#[derive(Debug)]
pub(crate) struct Batch {
    pub(crate) model: Arc<PreparedModel>,
    pub(crate) jobs: Vec<Job>,
}

/// Drops every queued job whose caller has abandoned it (its `Pending`
/// handle was dropped, e.g. by an admission layer shedding the request),
/// returning how many were removed. Without this, sustained overload
/// would leave a trail of admitted-then-shed jobs growing the queue
/// without bound while nobody waits for their answers.
pub(crate) fn purge_cancelled(queue: &mut VecDeque<Job>) -> usize {
    let before = queue.len();
    queue.retain(|j| !j.cancelled.load(Ordering::Acquire));
    before - queue.len()
}

/// Drops every queued job whose deadline has already passed, answering
/// each with [`ServeError::DeadlineExceeded`], and returns how many were
/// dropped. Run at dequeue time — expired work is shed *before* the
/// GEMM, so a deadline-heavy backlog degrades to cheap rejections
/// instead of computing results nobody can use.
pub(crate) fn purge_expired(queue: &mut VecDeque<Job>, now: Instant) -> usize {
    let before = queue.len();
    queue.retain(|j| {
        let expired = j.deadline.is_some_and(|d| now >= d);
        if expired {
            // A dropped receiver just means the caller also gave up.
            let _ = j.responder.send(Err(ServeError::DeadlineExceeded));
        }
        !expired
    });
    before - queue.len()
}

/// The soonest instant the queue head's batch must dispatch: the
/// policy's linger bound, capped by the head's own deadline — lingering
/// for companions must never push the head past its deadline.
pub(crate) fn head_dispatch_deadline(head: &Job, max_wait: Duration) -> Instant {
    let linger = head.enqueued_at + max_wait;
    match head.deadline {
        Some(d) => linger.min(d),
        None => linger,
    }
}

/// Total queued columns targeting the queue head's model — what the
/// worker compares against [`BatchPolicy::max_batch`] when deciding
/// whether to keep waiting.
pub(crate) fn head_model_cols(queue: &VecDeque<Job>) -> usize {
    let Some(head) = queue.front() else { return 0 };
    queue
        .iter()
        .filter(|j| Arc::ptr_eq(&j.model, &head.model))
        .map(|j| j.payload.cols())
        .sum()
}

/// Whether every queued job targets the queue head's model. Workers only
/// linger for companions while this holds: once a *different* model is
/// waiting behind the head, lingering would head-of-line-block it, so
/// the head batch dispatches immediately and frees the queue.
pub(crate) fn queue_is_single_model(queue: &VecDeque<Job>) -> bool {
    let Some(head) = queue.front() else {
        return true;
    };
    queue.iter().all(|j| Arc::ptr_eq(&j.model, &head.model))
}

/// Removes the head job plus every queued job for the same model, in
/// arrival order, until the column budget is filled. Jobs for other
/// models keep their relative order.
///
/// After the greedy fill, a vector-group packing pass tops the batch up
/// to a multiple of the PE array's vector width
/// ([`VECTOR_LEN`](panacea_bitslice::VECTOR_LEN)): the GEMM zero-pads a
/// misaligned batch, so pulling one more same-model request that lands
/// the total exactly on a vector boundary converts wasted padding
/// columns into served work.
pub(crate) fn take_batch(queue: &mut VecDeque<Job>, max_batch: usize) -> Option<Batch> {
    let head = queue.pop_front()?;
    let model = Arc::clone(&head.model);
    let mut cols = head.payload.cols();
    let mut jobs = vec![head];
    let mut i = 0;
    while i < queue.len() && cols < max_batch {
        if Arc::ptr_eq(&queue[i].model, &model) {
            let job = queue.remove(i).expect("index in bounds");
            cols += job.payload.cols();
            jobs.push(job);
        } else {
            i += 1;
        }
    }
    while !cols.is_multiple_of(VECTOR_LEN) {
        let need = VECTOR_LEN - cols % VECTOR_LEN;
        // Prefer a request that fits inside the padding we would emit
        // anyway; failing that, accept one that still ends on a vector
        // boundary with at most one extra group of overshoot.
        let fits = |j: &Job| {
            let c = j.payload.cols();
            c <= need || (c % VECTOR_LEN == need && c <= need + VECTOR_LEN)
        };
        let Some(idx) = queue
            .iter()
            .position(|j| Arc::ptr_eq(&j.model, &model) && fits(j))
        else {
            break;
        };
        let job = queue.remove(idx).expect("index in bounds");
        cols += job.payload.cols();
        jobs.push(job);
    }
    Some(Batch { model, jobs })
}

/// Executes a batch: one coalesced forward pass, split back per request,
/// responses sent, metrics recorded. Requests whose receiver has been
/// dropped are completed and counted but their send is ignored.
///
/// The forward pass runs under `catch_unwind`: a panic (a model bug, or
/// the `serve.worker.execute` fault site firing) answers every rider
/// with [`ServeError::Internal`] and records a `worker_panic` — the
/// worker thread survives and the callers are released, not abandoned.
/// Stateless requests tolerate the batch-wide answer because infer is
/// idempotent; clients simply retry.
pub(crate) fn execute(batch: Batch, metrics: &Metrics) {
    let Batch { model, jobs } = batch;
    let refs: Vec<&Payload> = jobs.iter().map(|j| &j.payload).collect();
    let total_cols: usize = refs.iter().map(|p| p.cols()).sum();

    let started = Instant::now();
    for job in &jobs {
        metrics.record_queue_wait(started.duration_since(job.enqueued_at));
    }
    let ran = catch_unwind(AssertUnwindSafe(|| {
        panacea_faultline::point("serve.worker.execute");
        model.forward_batch(&refs)
    }));
    let (outputs, workload) = match ran {
        Ok(out) => out,
        Err(_) => {
            metrics.record_worker_panic(model.name(), "worker_execute");
            for job in &jobs {
                let _ = job.responder.send(Err(ServeError::Internal {
                    at: "worker_execute",
                }));
            }
            return;
        }
    };
    let compute = started.elapsed();

    let done = Instant::now();
    let latencies: Vec<Duration> = jobs
        .iter()
        .map(|j| done.duration_since(j.enqueued_at))
        .collect();
    // Record before answering: a caller that observes its response must
    // also observe this batch in the metrics.
    let batch_max_latency = latencies.iter().copied().max().unwrap_or(Duration::ZERO);
    // Columns the GEMM zero-padded to reach the PE vector width — the
    // waste the vector-group packing pass exists to reclaim.
    let padded = (VECTOR_LEN - total_cols % VECTOR_LEN) % VECTOR_LEN;
    metrics.record_batch(
        jobs.len(),
        total_cols,
        padded,
        &workload,
        compute,
        batch_max_latency,
    );
    metrics.record_model_execute(model.name(), compute);
    let split_started = Instant::now();
    for ((job, out), latency) in jobs.iter().zip(outputs).zip(latencies) {
        // Record remote spans *before* answering: the submitting thread
        // is blocked on this channel, so its trace cannot finish until
        // the spans are in the collector.
        if let Some(ctx) = &job.ctx {
            ctx.record_span("queue_wait", job.enqueued_at, started);
            ctx.record_span("execute", started, done);
            ctx.record_span("split_back", split_started, Instant::now());
        }
        // A dropped receiver just means the caller stopped waiting.
        let _ = job.responder.send(Ok(InferenceOutput {
            payload: out,
            scale: model.output_scale(),
            workload,
            batched_cols: total_cols,
            latency,
        }));
    }
    metrics.record_split_back(split_started.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LayerSpec, PrepareOptions, PreparedModel};
    use panacea_tensor::dist::DistributionKind;
    use panacea_tensor::Matrix;

    fn prepared(seed: u64) -> Arc<PreparedModel> {
        let mut rng = panacea_tensor::seeded_rng(seed);
        let w = DistributionKind::Gaussian {
            mean: 0.0,
            std: 0.05,
        }
        .sample_matrix(8, 16, &mut rng);
        let calib = DistributionKind::Gaussian {
            mean: 0.2,
            std: 0.5,
        }
        .sample_matrix(16, 16, &mut rng);
        Arc::new(
            PreparedModel::prepare(
                "m",
                &[LayerSpec::unbiased(w)],
                &calib,
                PrepareOptions::default(),
            )
            .expect("prepare"),
        )
    }

    type Reply = Result<InferenceOutput, ServeError>;

    fn job(model: &Arc<PreparedModel>, cols: usize) -> (Job, mpsc::Receiver<Reply>) {
        let (tx, rx) = mpsc::channel();
        let codes = Matrix::from_fn(model.in_features(), cols, |r, c| {
            ((r * 31 + c * 7) % 200) as i32
        });
        (
            Job {
                model: Arc::clone(model),
                payload: codes.into(),
                responder: tx,
                enqueued_at: Instant::now(),
                deadline: None,
                cancelled: Arc::new(AtomicBool::new(false)),
                ctx: None,
            },
            rx,
        )
    }

    #[test]
    fn take_batch_groups_by_model_identity() {
        let a = prepared(1);
        let b = prepared(2);
        let mut queue = VecDeque::new();
        let (ja1, _r1) = job(&a, 2);
        let (jb, _r2) = job(&b, 2);
        let (ja2, _r3) = job(&a, 3);
        queue.extend([ja1, jb, ja2]);
        assert_eq!(head_model_cols(&queue), 5);
        let batch = take_batch(&mut queue, 32).expect("non-empty");
        assert_eq!(batch.jobs.len(), 2);
        assert!(Arc::ptr_eq(&batch.model, &a));
        // The other model's job stays queued at the head.
        assert_eq!(queue.len(), 1);
        assert!(Arc::ptr_eq(&queue[0].model, &b));
    }

    #[test]
    fn take_batch_respects_column_budget() {
        let a = prepared(3);
        let mut queue = VecDeque::new();
        let mut rxs = Vec::new();
        for _ in 0..6 {
            let (j, rx) = job(&a, 4);
            queue.push_back(j);
            rxs.push(rx);
        }
        // Budget 10: head (4) + one more (8) still < 10, third reaches 12.
        let batch = take_batch(&mut queue, 10).expect("non-empty");
        assert_eq!(batch.jobs.len(), 3);
        assert_eq!(queue.len(), 3);
    }

    #[test]
    fn vector_group_packing_tops_up_to_alignment() {
        let a = prepared(6);
        let mut queue = VecDeque::new();
        let mut rxs = Vec::new();
        // Head fills the budget (3 ≥ 3) but leaves 1 padding column; the
        // packer should skip the 2-col job and pull the 1-col job.
        for cols in [3usize, 2, 1, 4] {
            let (j, rx) = job(&a, cols);
            queue.push_back(j);
            rxs.push(rx);
        }
        let batch = take_batch(&mut queue, 3).expect("non-empty");
        let widths: Vec<usize> = batch.jobs.iter().map(|j| j.payload.cols()).collect();
        assert_eq!(widths, vec![3, 1], "packer should reclaim the padding");
        // The skipped jobs keep their relative order.
        let rest: Vec<usize> = queue.iter().map(|j| j.payload.cols()).collect();
        assert_eq!(rest, vec![2, 4]);
    }

    #[test]
    fn vector_group_packing_accepts_bounded_overshoot() {
        let a = prepared(7);
        let mut queue = VecDeque::new();
        let mut rxs = Vec::new();
        // 2 + 6 = 8 is vector-aligned; 6 > the 2 padding columns but ends
        // on a boundary within one extra group, so it should ride along.
        for cols in [2usize, 6] {
            let (j, rx) = job(&a, cols);
            queue.push_back(j);
            rxs.push(rx);
        }
        let batch = take_batch(&mut queue, 2).expect("non-empty");
        let total: usize = batch.jobs.iter().map(|j| j.payload.cols()).sum();
        assert_eq!(total, 8);
        assert!(queue.is_empty());
    }

    #[test]
    fn vector_group_packing_fills_from_several_small_jobs() {
        let a = prepared(8);
        let mut queue = VecDeque::new();
        let mut rxs = Vec::new();
        for cols in [6usize, 1, 1] {
            let (j, rx) = job(&a, cols);
            queue.push_back(j);
            rxs.push(rx);
        }
        let batch = take_batch(&mut queue, 6).expect("non-empty");
        let total: usize = batch.jobs.iter().map(|j| j.payload.cols()).sum();
        assert_eq!(total, 8, "two singles should complete the vector group");
        assert!(queue.is_empty());
    }

    #[test]
    fn packing_leaves_misaligned_batch_when_nothing_fits() {
        let a = prepared(9);
        let b = prepared(10);
        let mut queue = VecDeque::new();
        let (ja, _ra) = job(&a, 3);
        let (jb, _rb) = job(&b, 1);
        queue.extend([ja, jb]);
        // The only queued job belongs to another model: padding stands.
        let batch = take_batch(&mut queue, 8).expect("non-empty");
        assert_eq!(batch.jobs.len(), 1);
        assert_eq!(queue.len(), 1);
        let metrics = Metrics::default();
        execute(batch, &metrics);
        assert_eq!(metrics.snapshot().padded_cols, 1);
    }

    #[test]
    fn purge_cancelled_drops_abandoned_jobs_only() {
        let a = prepared(11);
        let mut queue = VecDeque::new();
        let (j1, _r1) = job(&a, 1);
        let (j2, _r2) = job(&a, 2);
        let (j3, _r3) = job(&a, 3);
        j2.cancelled.store(true, Ordering::Release);
        queue.extend([j1, j2, j3]);
        assert_eq!(purge_cancelled(&mut queue), 1);
        let widths: Vec<usize> = queue.iter().map(|j| j.payload.cols()).collect();
        assert_eq!(widths, vec![1, 3], "live jobs must keep their order");
        assert_eq!(purge_cancelled(&mut queue), 0);
    }

    #[test]
    fn empty_queue_yields_no_batch() {
        let mut queue: VecDeque<Job> = VecDeque::new();
        assert!(take_batch(&mut queue, 8).is_none());
        assert_eq!(head_model_cols(&queue), 0);
    }

    #[test]
    fn execute_answers_every_job_bit_exactly() {
        let a = prepared(4);
        let mut queue = VecDeque::new();
        let mut rxs = Vec::new();
        for cols in [1usize, 3, 5] {
            let (j, rx) = job(&a, cols);
            queue.push_back(j);
            rxs.push(rx);
        }
        let singles: Vec<Payload> = queue.iter().map(|j| a.forward(&j.payload).0).collect();
        let metrics = Metrics::default();
        let batch = take_batch(&mut queue, 64).expect("non-empty");
        execute(batch, &metrics);
        for (rx, alone) in rxs.iter().zip(singles) {
            let out = rx.try_recv().expect("answered").expect("succeeded");
            assert_eq!(out.payload, alone);
            assert_eq!(out.batched_cols, 9);
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.columns, 9);
    }

    #[test]
    fn purge_expired_answers_deadline_exceeded_before_the_gemm() {
        let a = prepared(12);
        let mut queue = VecDeque::new();
        let (mut j1, r1) = job(&a, 1);
        let (j2, r2) = job(&a, 2);
        let (mut j3, r3) = job(&a, 3);
        let now = Instant::now();
        j1.deadline = Some(now - Duration::from_millis(1)); // already past
        j3.deadline = Some(now + Duration::from_secs(60)); // comfortably live
        queue.extend([j1, j2, j3]);
        assert_eq!(purge_expired(&mut queue, now), 1);
        match r1.try_recv().expect("expired job is answered") {
            Err(ServeError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(r2.try_recv().is_err(), "live job not answered yet");
        assert!(r3.try_recv().is_err(), "live job not answered yet");
        let widths: Vec<usize> = queue.iter().map(|j| j.payload.cols()).collect();
        assert_eq!(widths, vec![2, 3], "live jobs keep their order");
    }

    #[test]
    fn head_dispatch_deadline_is_capped_by_the_job_deadline() {
        let a = prepared(13);
        let (mut j, _r) = job(&a, 1);
        let long = Duration::from_secs(10);
        assert_eq!(head_dispatch_deadline(&j, long), j.enqueued_at + long);
        let d = j.enqueued_at + Duration::from_millis(1);
        j.deadline = Some(d);
        assert_eq!(head_dispatch_deadline(&j, long), d);
    }

    #[test]
    fn execute_survives_dropped_receivers() {
        let a = prepared(5);
        let (j, rx) = job(&a, 2);
        drop(rx);
        let metrics = Metrics::default();
        execute(
            Batch {
                model: Arc::clone(&a),
                jobs: vec![j],
            },
            &metrics,
        );
        assert_eq!(metrics.snapshot().requests, 1);
    }
}
