//! Aggregated serving metrics: request/batch counts, coalesced columns,
//! summed AQS workload, latency extremes, and per-stage latency
//! histograms.
//!
//! Counters are sharded atomics ([`ShardedCounter`]) rather than one
//! `Mutex`-guarded struct, so steady-state fused decode passes and wide
//! batch completions never contend on one lock or cache line. Every
//! counter is individually monotone, which keeps [`Metrics::snapshot`]
//! monotone field-by-field under concurrent recording — the invariant
//! pollers rely on to compute rates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use panacea_core::Workload;
use panacea_telemetry::{
    EventSeverity, FlightRecorder, Histogram, HistogramSnapshot, MetricRegistry, ShardedCounter,
};

/// A point-in-time copy of the runtime's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests completed.
    pub requests: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Activation columns processed (the GEMM `N` work actually served).
    pub columns: u64,
    /// Summed AQS workload over every dispatched batch.
    pub workload: Workload,
    /// Total on-worker compute time across batches.
    pub compute_time: Duration,
    /// Worst queue-to-response latency seen so far.
    pub max_latency: Duration,
    /// Widest batch (in columns) dispatched so far.
    pub widest_batch: u64,
    /// Columns the GEMM zero-padded to reach the PE vector width —
    /// wasted work the batcher's vector-group packing tries to avoid.
    pub padded_cols: u64,
    /// Queued requests dropped before execution because their caller
    /// stopped waiting (its `Pending` handle was dropped, e.g. by an
    /// admission layer shedding the request).
    pub cancelled: u64,
    /// Panics caught (and isolated) on worker execution paths; each one
    /// answered its callers with `ServeError::Internal` instead of
    /// killing the worker.
    pub worker_panics: u64,
    /// Queued requests dropped at dequeue because their deadline had
    /// already expired — answered `DeadlineExceeded` before the GEMM.
    pub expired: u64,
}

impl MetricsSnapshot {
    /// Mean columns per batch — the effective batching factor.
    pub fn mean_batch_cols(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.columns as f64 / self.batches as f64
        }
    }

    /// Served columns per second of worker compute time.
    pub fn columns_per_second(&self) -> f64 {
        let secs = self.compute_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.columns as f64 / secs
        }
    }

    /// Fraction of executed GEMM columns that were zero padding
    /// (`padded / (served + padded)`) — 0 when nothing has run.
    pub fn padding_overhead(&self) -> f64 {
        let executed = self.columns + self.padded_cols;
        if executed == 0 {
            0.0
        } else {
            self.padded_cols as f64 / executed as f64
        }
    }
}

/// Shared serving counters plus per-stage latency histograms, updated
/// on the worker hot path without locks.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: ShardedCounter,
    batches: ShardedCounter,
    columns: ShardedCounter,
    padded_cols: ShardedCounter,
    cancelled: ShardedCounter,
    worker_panics: ShardedCounter,
    expired: ShardedCounter,
    compute_nanos: ShardedCounter,
    wl_mul: ShardedCounter,
    wl_add: ShardedCounter,
    wl_ema_slices: ShardedCounter,
    wl_comp_mul: ShardedCounter,
    wl_comp_add: ShardedCounter,
    max_latency_nanos: AtomicU64,
    widest_batch: AtomicU64,
    /// Enqueue-to-execution-start wait, per request (ns).
    queue_wait: Histogram,
    /// Linger-start-to-batch-taken formation time, per batch (ns).
    batch_form: Histogram,
    /// Coalesced forward-pass duration, per batch (ns).
    execute: Histogram,
    /// Split-and-respond fan-out duration, per batch (ns).
    split_back: Histogram,
    /// Optional dimensional registry: when present, per-model windowed
    /// latencies are recorded under (model, "batch", "execute") in
    /// addition to the aggregate histograms above.
    dims: Option<MetricRegistry>,
    /// Optional flight recorder: when present, batch formations land in
    /// the event ring.
    recorder: Option<FlightRecorder>,
}

impl Metrics {
    /// Metrics that additionally record per-model windowed dimensions
    /// into `dims`.
    pub(crate) fn with_dims(dims: MetricRegistry) -> Self {
        Metrics {
            dims: Some(dims),
            ..Metrics::default()
        }
    }

    /// Metrics that record dimensions *and* flight-recorder events.
    pub(crate) fn with_observability(dims: MetricRegistry, recorder: FlightRecorder) -> Self {
        Metrics {
            dims: Some(dims),
            recorder: Some(recorder),
            ..Metrics::default()
        }
    }

    /// Records one batch's compute latency under its model's dimension
    /// — a no-op without a registry.
    pub(crate) fn record_model_execute(&self, model: &str, compute: Duration) {
        if let Some(dims) = &self.dims {
            dims.cell(model, "batch", "execute").record_latency(compute);
        }
    }

    /// Records one completed batch.
    pub(crate) fn record_batch(
        &self,
        requests: usize,
        columns: usize,
        padded: usize,
        workload: &Workload,
        compute: Duration,
        max_latency: Duration,
    ) {
        self.requests.add(requests as u64);
        self.batches.add(1);
        self.columns.add(columns as u64);
        self.padded_cols.add(padded as u64);
        self.wl_mul.add(workload.mul);
        self.wl_add.add(workload.add);
        self.wl_ema_slices.add(workload.ema_slices);
        self.wl_comp_mul.add(workload.comp_mul);
        self.wl_comp_add.add(workload.comp_add);
        self.compute_nanos.add(duration_nanos(compute));
        self.max_latency_nanos
            .fetch_max(duration_nanos(max_latency), Ordering::Relaxed);
        self.widest_batch
            .fetch_max(columns as u64, Ordering::Relaxed);
        self.execute.record_duration(compute);
        if let Some(recorder) = &self.recorder {
            recorder.record(
                EventSeverity::Info,
                "batch_formed",
                format!("jobs={requests} cols={columns} padded={padded}"),
            );
        }
    }

    /// Records queued requests purged because their caller went away.
    pub(crate) fn record_cancelled(&self, requests: usize) {
        self.cancelled.add(requests as u64);
    }

    /// Records one caught worker panic: a `worker_panic` event in the
    /// flight recorder (when wired) plus a dimensional error count under
    /// `(model, "worker", at)`, so SLO error-rate targets see it.
    pub(crate) fn record_worker_panic(&self, model: &str, at: &'static str) {
        self.worker_panics.add(1);
        if let Some(dims) = &self.dims {
            dims.cell(model, "worker", at).record_error();
        }
        if let Some(recorder) = &self.recorder {
            recorder.record(
                EventSeverity::Error,
                "worker_panic",
                format!("at={at} model={model}"),
            );
        }
    }

    /// Records requests dropped at dequeue with an expired deadline.
    pub(crate) fn record_expired(&self, requests: usize) {
        self.expired.add(requests as u64);
    }

    /// Records one request's enqueue-to-execution-start wait.
    pub(crate) fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait.record_duration(wait);
    }

    /// Records how long a worker spent forming (lingering for) a batch.
    pub(crate) fn record_batch_form(&self, form: Duration) {
        self.batch_form.record_duration(form);
    }

    /// Records the post-GEMM split-and-respond fan-out time of a batch.
    pub(crate) fn record_split_back(&self, split: Duration) {
        self.split_back.record_duration(split);
    }

    /// Copies out the current counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.sum(),
            batches: self.batches.sum(),
            columns: self.columns.sum(),
            workload: Workload {
                mul: self.wl_mul.sum(),
                add: self.wl_add.sum(),
                ema_slices: self.wl_ema_slices.sum(),
                comp_mul: self.wl_comp_mul.sum(),
                comp_add: self.wl_comp_add.sum(),
            },
            compute_time: Duration::from_nanos(self.compute_nanos.sum()),
            max_latency: Duration::from_nanos(self.max_latency_nanos.load(Ordering::Relaxed)),
            widest_batch: self.widest_batch.load(Ordering::Relaxed),
            padded_cols: self.padded_cols.sum(),
            cancelled: self.cancelled.sum(),
            worker_panics: self.worker_panics.sum(),
            expired: self.expired.sum(),
        }
    }

    /// Per-stage latency histograms (nanosecond samples), tagged with
    /// their stage names.
    pub fn stage_snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        vec![
            ("queue_wait", self.queue_wait.snapshot()),
            ("batch_form", self.batch_form.snapshot()),
            ("execute", self.execute.snapshot()),
            ("split_back", self.split_back.snapshot()),
        ]
    }
}

/// Duration → nanoseconds, saturating at `u64::MAX` (~584 years).
fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_accumulate() {
        let m = Metrics::default();
        let wl = Workload {
            mul: 10,
            add: 20,
            ema_slices: 5,
            comp_mul: 1,
            comp_add: 2,
        };
        m.record_batch(
            3,
            12,
            0,
            &wl,
            Duration::from_millis(4),
            Duration::from_millis(9),
        );
        m.record_batch(
            1,
            4,
            2,
            &wl,
            Duration::from_millis(2),
            Duration::from_millis(3),
        );
        m.record_cancelled(2);
        let s = m.snapshot();
        assert_eq!(s.cancelled, 2);
        assert_eq!(s.requests, 4);
        assert_eq!(s.batches, 2);
        assert_eq!(s.columns, 16);
        assert_eq!(s.padded_cols, 2);
        assert_eq!(s.workload.mul, 20);
        assert_eq!(s.max_latency, Duration::from_millis(9));
        assert_eq!(s.widest_batch, 12);
        assert!((s.mean_batch_cols() - 8.0).abs() < 1e-12);
        assert!(s.columns_per_second() > 0.0);
        assert!((s.padding_overhead() - 2.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_has_safe_ratios() {
        let s = Metrics::default().snapshot();
        assert_eq!(s.mean_batch_cols(), 0.0);
        assert_eq!(s.columns_per_second(), 0.0);
        assert_eq!(s.padding_overhead(), 0.0);
    }

    #[test]
    fn stage_histograms_capture_batch_stages() {
        let m = Metrics::default();
        m.record_queue_wait(Duration::from_micros(50));
        m.record_batch_form(Duration::from_micros(10));
        m.record_split_back(Duration::from_micros(5));
        m.record_batch(
            1,
            4,
            0,
            &Workload::default(),
            Duration::from_micros(200),
            Duration::from_micros(260),
        );
        let stages = m.stage_snapshots();
        let by_name: std::collections::HashMap<_, _> = stages.into_iter().collect();
        assert_eq!(by_name["queue_wait"].count, 1);
        assert_eq!(by_name["batch_form"].count, 1);
        assert_eq!(by_name["split_back"].count, 1);
        let exec = &by_name["execute"];
        assert_eq!(exec.count, 1);
        assert!(exec.p50() >= 200_000, "execute p50 in ns: {}", exec.p50());
    }
}
