//! Aggregated serving metrics: request/batch counts, coalesced columns,
//! summed AQS workload, and latency extremes.

use std::sync::Mutex;
use std::time::Duration;

use panacea_core::Workload;

/// A point-in-time copy of the runtime's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests completed.
    pub requests: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Activation columns processed (the GEMM `N` work actually served).
    pub columns: u64,
    /// Summed AQS workload over every dispatched batch.
    pub workload: Workload,
    /// Total on-worker compute time across batches.
    pub compute_time: Duration,
    /// Worst queue-to-response latency seen so far.
    pub max_latency: Duration,
    /// Widest batch (in columns) dispatched so far.
    pub widest_batch: u64,
    /// Columns the GEMM zero-padded to reach the PE vector width —
    /// wasted work the batcher's vector-group packing tries to avoid.
    pub padded_cols: u64,
    /// Queued requests dropped before execution because their caller
    /// stopped waiting (its `Pending` handle was dropped, e.g. by an
    /// admission layer shedding the request).
    pub cancelled: u64,
}

impl MetricsSnapshot {
    /// Mean columns per batch — the effective batching factor.
    pub fn mean_batch_cols(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.columns as f64 / self.batches as f64
        }
    }

    /// Served columns per second of worker compute time.
    pub fn columns_per_second(&self) -> f64 {
        let secs = self.compute_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.columns as f64 / secs
        }
    }

    /// Fraction of executed GEMM columns that were zero padding
    /// (`padded / (served + padded)`) — 0 when nothing has run.
    pub fn padding_overhead(&self) -> f64 {
        let executed = self.columns + self.padded_cols;
        if executed == 0 {
            0.0
        } else {
            self.padded_cols as f64 / executed as f64
        }
    }
}

/// Shared mutable counters, updated once per dispatched batch.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<MetricsSnapshot>,
}

impl Metrics {
    /// Records one completed batch.
    pub(crate) fn record_batch(
        &self,
        requests: usize,
        columns: usize,
        padded: usize,
        workload: &Workload,
        compute: Duration,
        max_latency: Duration,
    ) {
        let mut m = self.inner.lock().expect("metrics lock poisoned");
        m.requests += requests as u64;
        m.batches += 1;
        m.columns += columns as u64;
        m.padded_cols += padded as u64;
        m.workload = m.workload.merged(workload);
        m.compute_time += compute;
        m.max_latency = m.max_latency.max(max_latency);
        m.widest_batch = m.widest_batch.max(columns as u64);
    }

    /// Records queued requests purged because their caller went away.
    pub(crate) fn record_cancelled(&self, requests: usize) {
        let mut m = self.inner.lock().expect("metrics lock poisoned");
        m.cancelled += requests as u64;
    }

    /// Copies out the current counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        *self.inner.lock().expect("metrics lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_accumulate() {
        let m = Metrics::default();
        let wl = Workload {
            mul: 10,
            add: 20,
            ema_slices: 5,
            comp_mul: 1,
            comp_add: 2,
        };
        m.record_batch(
            3,
            12,
            0,
            &wl,
            Duration::from_millis(4),
            Duration::from_millis(9),
        );
        m.record_batch(
            1,
            4,
            2,
            &wl,
            Duration::from_millis(2),
            Duration::from_millis(3),
        );
        m.record_cancelled(2);
        let s = m.snapshot();
        assert_eq!(s.cancelled, 2);
        assert_eq!(s.requests, 4);
        assert_eq!(s.batches, 2);
        assert_eq!(s.columns, 16);
        assert_eq!(s.padded_cols, 2);
        assert_eq!(s.workload.mul, 20);
        assert_eq!(s.max_latency, Duration::from_millis(9));
        assert_eq!(s.widest_batch, 12);
        assert!((s.mean_batch_cols() - 8.0).abs() < 1e-12);
        assert!(s.columns_per_second() > 0.0);
        assert!((s.padding_overhead() - 2.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_has_safe_ratios() {
        let s = Metrics::default().snapshot();
        assert_eq!(s.mean_batch_cols(), 0.0);
        assert_eq!(s.columns_per_second(), 0.0);
        assert_eq!(s.padding_overhead(), 0.0);
    }
}
