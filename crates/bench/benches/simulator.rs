//! Criterion benchmarks of the accelerator models themselves: cost of
//! simulating one layer and one full benchmark model on each design.

use criterion::{criterion_group, criterion_main, Criterion};
use panacea_sim::arch::{HardwareBudget, PanaceaConfig};
use panacea_sim::baselines::{SibiaSim, SystolicFlow, SystolicSim};
use panacea_sim::panacea::PanaceaSim;
use panacea_sim::workload::LayerWork;
use panacea_sim::{simulate_model, Accelerator};

fn layer() -> LayerWork {
    LayerWork {
        name: "fc".into(),
        m: 2560,
        k: 2560,
        n: 2048,
        count: 32,
        w_planes: 2,
        x_planes: 2,
        rho_w: 0.5,
        rho_x: 0.95,
    }
}

fn bench_simulator(c: &mut Criterion) {
    let pan = PanaceaSim::new(PanaceaConfig::default());
    let sibia = SibiaSim::new(HardwareBudget::default());
    let ws = SystolicSim::new(SystolicFlow::WeightStationary, HardwareBudget::default());
    let l = layer();

    c.bench_function("panacea_layer", |b| b.iter(|| pan.simulate(&l)));
    c.bench_function("sibia_layer", |b| b.iter(|| sibia.simulate(&l)));
    c.bench_function("saws_layer", |b| b.iter(|| ws.simulate(&l)));

    let model: Vec<LayerWork> = (0..16).map(|_| layer()).collect();
    c.bench_function("panacea_model_16_layers", |b| {
        b.iter(|| simulate_model(&pan, &model, 400.0))
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_simulator
}
criterion_main!(benches);
