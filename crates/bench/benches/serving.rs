//! Criterion benchmarks of the serving stack: throughput of the batched
//! AQS pipeline versus batch width, transformer-block forward versus
//! batch depth, end-to-end runtime dispatch versus worker count, and the
//! gateway's per-request overheads — shard routing decisions and
//! request-cache hits/misses.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panacea_block::{decode_step, decode_step_batch, KvCache, QuantizedBlock};
use panacea_gateway::{CacheConfig, CachedOutput, RequestCache, ShardRouter};
use panacea_models::engine::TransformerConfig;
use panacea_models::zoo::Benchmark;
use panacea_serve::{
    BatchPolicy, LayerSpec, ModelRegistry, Payload, PrepareOptions, PreparedModel, Runtime,
    RuntimeConfig,
};
use panacea_tensor::dist::DistributionKind;
use panacea_tensor::Matrix;
use rand::Rng;

const K: usize = 128;
const M: usize = 64;

fn prepared_model(seed: u64) -> PreparedModel {
    let mut rng = panacea_tensor::seeded_rng(seed);
    let w = DistributionKind::Gaussian {
        mean: 0.0,
        std: 0.05,
    }
    .sample_matrix(M, K, &mut rng);
    let calib = DistributionKind::TransformerAct {
        core_mean: 0.1,
        core_std: 0.4,
        pos_scale: 8.0,
        neg_scale: 5.0,
        outlier_frac: 0.02,
    }
    .sample_matrix(K, 64, &mut rng);
    PreparedModel::prepare(
        "bench",
        &[LayerSpec::unbiased(w)],
        &calib,
        PrepareOptions::default(),
    )
    .expect("prepare")
}

fn request(model: &PreparedModel, cols: usize, rng: &mut impl Rng) -> Matrix<i32> {
    Matrix::from_fn(model.in_features(), cols, |_, _| rng.gen_range(0i32..256))
}

/// One coalesced forward pass over `batch` columns — the raw kernel-side
/// gain of batching, independent of queueing.
fn bench_batch_width(c: &mut Criterion) {
    let model = prepared_model(1);
    let mut rng = panacea_tensor::seeded_rng(2);
    let mut group = c.benchmark_group("serving_batch_width");
    for batch in [1usize, 8, 32] {
        let codes = request(&model, batch, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("forward_cols", batch),
            &codes,
            |b, codes| b.iter(|| model.forward_codes(codes)),
        );
    }
    group.finish();
}

fn prepared_block(seed: u64) -> QuantizedBlock {
    let cfg = TransformerConfig {
        d_model: 32,
        n_heads: 4,
        d_ff: 64,
        n_layers: 1,
    };
    panacea_serve::testutil::block_stack(Benchmark::BertBase, cfg, seed)
        .pop()
        .expect("one block")
}

/// One quantized transformer-block forward (4 AQS GEMMs + f32 attention
/// glue) as the coalesced batch widens: how much of the per-tile setup
/// the block engine amortizes over the `N` dimension, per sub-layer mix.
fn bench_block_forward(c: &mut Criterion) {
    let block = prepared_block(8);
    let mut group = c.benchmark_group("block_forward");
    for batch in [1usize, 8, 32] {
        // `batch` independent 4-token sequences coalesced per the
        // serving contract: GEMMs run wide, attention per sequence.
        let seqs: Vec<Matrix<f32>> = (0..batch)
            .map(|i| {
                Matrix::from_fn(32, 4, |r, c| {
                    (((r * 29 + c * 11 + i * 17) % 89) as f32 - 44.0) / 22.0
                })
            })
            .collect();
        let refs: Vec<&Matrix<f32>> = seqs.iter().collect();
        group.bench_with_input(BenchmarkId::new("sequences", batch), &refs, |b, refs| {
            b.iter(|| block.forward_batch(refs))
        });
    }
    group.finish();
}

/// Full runtime round trip: submit a burst of requests, wait for all
/// responses — queueing, coalescing, dispatch, and split included.
fn bench_runtime_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_runtime");
    for workers in [1usize, 2, 4] {
        let registry = Arc::new(ModelRegistry::new());
        let model = registry.insert(prepared_model(3));
        let runtime = Runtime::start(
            Arc::clone(&registry),
            RuntimeConfig {
                workers,
                policy: BatchPolicy {
                    max_batch: 32,
                    max_wait: Duration::from_micros(200),
                },
            },
        );
        let mut rng = panacea_tensor::seeded_rng(4);
        let burst: Vec<Matrix<i32>> = (0..16).map(|_| request(&model, 2, &mut rng)).collect();
        group.bench_with_input(
            BenchmarkId::new("burst16x2", workers),
            &burst,
            |b, burst| {
                b.iter(|| {
                    let pending: Vec<_> = burst
                        .iter()
                        .map(|codes| {
                            runtime
                                .submit_to(Arc::clone(&model), codes.clone())
                                .expect("queued")
                        })
                        .collect();
                    pending
                        .into_iter()
                        .map(|p| p.wait().expect("served").payload)
                        .collect::<Vec<_>>()
                })
            },
        );
    }
    group.finish();
}

/// Cost of one routing decision (rendezvous scores + a queue-depth
/// probe per candidate) as the shard count grows.
fn bench_router_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("gateway_router");
    for shards in [2usize, 4, 8] {
        let router = ShardRouter::new(vec![prepared_model(5)], shards, RuntimeConfig::default());
        group.bench_with_input(BenchmarkId::new("route", shards), &router, |b, router| {
            b.iter(|| router.route("bench"))
        });
    }
    group.finish();
}

/// Request-cache probe cost on both paths: a bit-exact hit (digest +
/// full key comparison + LRU bump) and a clean miss.
fn bench_request_cache(c: &mut Criterion) {
    let model = prepared_model(6);
    let mut rng = panacea_tensor::seeded_rng(7);
    let cache = RequestCache::new(CacheConfig {
        capacity: 512,
        shards: 8,
        ..CacheConfig::default()
    });
    let hit_codes = Payload::Codes(request(&model, 4, &mut rng));
    let (out, _) = model.forward(&hit_codes);
    cache.insert(
        model.instance_id(),
        hit_codes.clone(),
        CachedOutput {
            payload: out,
            scale: model.output_scale(),
        },
    );
    let miss_codes = Payload::Codes(request(&model, 4, &mut rng));

    let mut group = c.benchmark_group("gateway_cache");
    group.bench_function("hit", |b| {
        b.iter(|| cache.get(model.instance_id(), &hit_codes).expect("hit"))
    });
    group.bench_function("miss", |b| {
        b.iter(|| cache.get(model.instance_id(), &miss_codes))
    });
    group.finish();
}

/// One KV-cached decode step versus a full-prefix causal recompute, at
/// several prefix lengths. The cached step's per-token cost should stay
/// roughly flat in the prefix (only attention grows, linearly), while
/// the recompute re-runs every GEMM over the whole prefix and grows
/// linearly per token — the O(tokens) vs O(tokens²) gap across a
/// generation.
fn bench_decode_step(c: &mut Criterion) {
    let block = prepared_block(9);
    let token = Matrix::from_fn(32, 1, |r, _| (((r * 29 + 3) % 89) as f32 - 44.0) / 22.0);
    let mut group = c.benchmark_group("decode_step");
    for prefix_len in [16usize, 64, 256] {
        let prefix = Matrix::from_fn(32, prefix_len, |r, c| {
            (((r * 29 + c * 11) % 89) as f32 - 44.0) / 22.0
        });
        let blocks = std::slice::from_ref(&block);
        let mut prefilled = KvCache::for_blocks(blocks);
        decode_step(blocks, &prefix, &mut prefilled);
        group.bench_with_input(
            BenchmarkId::new("kv_cached", prefix_len),
            &prefilled,
            |b, prefilled| {
                // The clone is O(prefix) memcpy — negligible next to
                // the step's GEMMs, and it keeps every iteration
                // stepping from the same prefix length.
                b.iter(|| {
                    let mut kv = prefilled.clone();
                    decode_step(blocks, &token, &mut kv)
                })
            },
        );
        let with_new = Matrix::hstack(&[&prefix, &token]).expect("same rows");
        group.bench_with_input(
            BenchmarkId::new("full_recompute", prefix_len),
            &with_new,
            |b, with_new| b.iter(|| block.forward_segments_causal(with_new, &[with_new.cols()])),
        );
    }
    group.finish();
}

/// Continuous-batching decode: N sessions each advancing by one token,
/// executed as N serial solo steps versus one fused pass
/// (`decode_step_batch`). Both do identical per-session math bit for
/// bit; the fused pass fills the GEMM `N` dimension instead of padding
/// each width-1 step up to the PE vector width — the per-shard decode
/// throughput lever the serving batcher pulls.
fn bench_decode_batch(c: &mut Criterion) {
    let block = prepared_block(10);
    let blocks = std::slice::from_ref(&block);
    let mut group = c.benchmark_group("decode_batch");
    for sessions in [1usize, 4, 8, 16] {
        let prefilled: Vec<KvCache> = (0..sessions)
            .map(|s| {
                let prefix = Matrix::from_fn(32, 32, |r, c| {
                    (((r * 29 + c * 11 + s * 7) % 89) as f32 - 44.0) / 22.0
                });
                let mut kv = KvCache::for_blocks(blocks);
                decode_step(blocks, &prefix, &mut kv);
                kv
            })
            .collect();
        let tokens: Vec<Matrix<f32>> = (0..sessions)
            .map(|s| {
                Matrix::from_fn(32, 1, |r, _| {
                    (((r * 29 + s * 11 + 3) % 89) as f32 - 44.0) / 22.0
                })
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("serial_solo_steps", sessions),
            &prefilled,
            |b, prefilled| {
                b.iter(|| {
                    let mut kvs = prefilled.clone();
                    for (t, kv) in tokens.iter().zip(&mut kvs) {
                        decode_step(blocks, t, kv);
                    }
                })
            },
        );
        let refs: Vec<&Matrix<f32>> = tokens.iter().collect();
        let stacked = Matrix::hstack(&refs).expect("same rows");
        let segments = vec![1usize; sessions];
        group.bench_with_input(
            BenchmarkId::new("fused_pass", sessions),
            &prefilled,
            |b, prefilled| {
                b.iter(|| {
                    let mut kvs = prefilled.clone();
                    let mut kv_refs: Vec<&mut KvCache> = kvs.iter_mut().collect();
                    decode_step_batch(blocks, &stacked, &segments, &mut kv_refs)
                })
            },
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_batch_width, bench_block_forward, bench_runtime_dispatch, bench_router_route, bench_request_cache, bench_decode_step, bench_decode_batch
}
criterion_main!(benches);
