//! Criterion benchmarks of the run-length codec at varying compressed
//! fractions (what the IDXD decodes every tile).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panacea_bitslice::{ActVector, RleStream};
use rand::Rng;

fn vectors(sparse: f64, n: usize, r: u8, seed: u64) -> Vec<ActVector> {
    let mut rng = panacea_tensor::seeded_rng(seed);
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < sparse {
                ActVector([r; 4])
            } else {
                ActVector([
                    rng.gen_range(0..16),
                    rng.gen_range(0..16),
                    rng.gen_range(0..16),
                    rng.gen_range(0..16),
                ])
            }
        })
        .collect()
}

fn bench_rle(c: &mut Criterion) {
    let r = 10u8;
    let mut group = c.benchmark_group("rle_codec");
    for &sparse in &[0.1f64, 0.5, 0.95] {
        let vs = vectors(sparse, 4096, r, 3);
        group.bench_with_input(BenchmarkId::new("encode", sparse), &sparse, |b, _| {
            b.iter(|| RleStream::encode(&vs, |v| v.is_uniform(r)))
        });
        let stream = RleStream::encode(&vs, |v| v.is_uniform(r));
        group.bench_with_input(BenchmarkId::new("decode", sparse), &sparse, |b, _| {
            b.iter(|| stream.decode())
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_rle
}
criterion_main!(benches);
