//! Criterion microbenchmarks of the three GEMM kernels at three sparsity
//! points — the software analogue of the paper's Table I comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panacea_bitslice::{SlicedActivation, SlicedWeight};
use panacea_core::aqs::aqs_gemm;
use panacea_core::dense::dense_gemm;
use panacea_core::sibia::{sibia_gemm, SkipSide};
use panacea_quant::dbs::DbsType;
use panacea_tensor::Matrix;
use rand::Rng;

const M: usize = 64;
const K: usize = 128;
const N: usize = 64;
const R: u8 = 9;

fn operands(sparse: f64, seed: u64) -> (Matrix<i32>, Matrix<i32>, Matrix<i32>) {
    let mut rng = panacea_tensor::seeded_rng(seed);
    let w = Matrix::from_fn(M, K, |_, _| {
        if rng.gen::<f64>() < sparse {
            rng.gen_range(-7i32..=7)
        } else {
            rng.gen_range(-64i32..64)
        }
    });
    let x_asym = Matrix::from_fn(K, N, |_, _| {
        if rng.gen::<f64>() < sparse {
            (i32::from(R) << 4) | rng.gen_range(0..16)
        } else {
            rng.gen_range(0i32..256)
        }
    });
    let x_sym = Matrix::from_fn(K, N, |_, _| {
        if rng.gen::<f64>() < sparse {
            rng.gen_range(-7i32..=7)
        } else {
            rng.gen_range(-64i32..64)
        }
    });
    (w, x_asym, x_sym)
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_kernels");
    for &sparse in &[0.0f64, 0.5, 0.95] {
        let (w, x_asym, x_sym) = operands(sparse, 7);
        let sw = SlicedWeight::from_int(&w, 1).expect("weights");
        let sx = SlicedActivation::from_uint(&x_asym, 1, DbsType::Type1).expect("acts");
        let sx_sym = SlicedWeight::from_int(&x_sym, 1).expect("sym acts");

        group.bench_with_input(BenchmarkId::new("dense", sparse), &sparse, |b, _| {
            b.iter(|| dense_gemm(&w, &x_asym, 8, 8).expect("shapes"))
        });
        group.bench_with_input(BenchmarkId::new("sibia", sparse), &sparse, |b, _| {
            b.iter(|| sibia_gemm(&sw, &sx_sym, SkipSide::Activation))
        });
        group.bench_with_input(BenchmarkId::new("aqs", sparse), &sparse, |b, _| {
            b.iter(|| aqs_gemm(&sw, &sx, R))
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_kernels
}
criterion_main!(benches);
