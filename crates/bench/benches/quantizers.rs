//! Criterion benchmarks of the PTQ front-end: calibration (with ZPM/DBS)
//! and element-wise quantization.

use criterion::{criterion_group, criterion_main, Criterion};
use panacea_quant::dbs::DbsConfig;
use panacea_quant::{ActivationCalibrator, AsymmetricQuantizer, Quantizer, SymmetricQuantizer};
use panacea_tensor::dist::DistributionKind;

fn bench_quantizers(c: &mut Criterion) {
    let mut rng = panacea_tensor::seeded_rng(5);
    let batch = DistributionKind::TransformerAct {
        core_mean: 0.1,
        core_std: 0.5,
        pos_scale: 10.0,
        neg_scale: 6.0,
        outlier_frac: 0.01,
    }
    .sample_matrix(256, 256, &mut rng);

    c.bench_function("calibrate_base", |b| {
        b.iter(|| {
            let mut cal = ActivationCalibrator::new(8);
            cal.observe(&batch);
            cal.finalize()
        })
    });
    c.bench_function("calibrate_zpm_dbs", |b| {
        b.iter(|| {
            let mut cal = ActivationCalibrator::new(8)
                .with_zpm(true)
                .with_dbs(DbsConfig::default());
            cal.observe(&batch);
            cal.finalize()
        })
    });

    let asym = AsymmetricQuantizer::calibrate(batch.as_slice(), 8);
    let sym = SymmetricQuantizer::calibrate(batch.as_slice(), 8);
    c.bench_function("quantize_asym_64k", |b| {
        b.iter(|| asym.quantize_matrix(&batch))
    });
    c.bench_function("quantize_sym_64k", |b| {
        b.iter(|| sym.quantize_matrix(&batch))
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_quantizers
}
criterion_main!(benches);
