//! Gateway load harness: mixed infer/decode traffic over real TCP,
//! machine-readable.
//!
//! Drives a live [`GatewayServer`] with concurrent clients at several
//! concurrency levels — half the clients hammer the stateless `infer`
//! verb on a linear-chain model, the other half run KV-cached decode
//! sessions on a transformer-block model — and records **client-side**
//! request latencies. Each level then cross-checks the server's own
//! windowed dimensional metrics (the `metrics` verb's
//! `(model, verb, stage)` summaries) against what the clients observed,
//! and asserts the `health` verb reports `ok` under this nominal load.
//!
//! A final overload phase points a synchronized burst at a gateway with
//! two admission permits and a zero-tolerance shed SLO, and asserts the
//! sheds are counted by reason on the wire and flip the health verdict
//! off `ok` — the failure path is exercised, not assumed.
//!
//! With `--export`, an extra phase runs the metric exporters under
//! load: a scraper thread polls the gateway's Prometheus text
//! exposition and JSONL metric line every 50ms while decode traffic
//! flows, writes the artifacts (`BENCH_gateway_metrics.prom`,
//! `BENCH_gateway_metrics.jsonl`), validates both formats, and A/B
//! gates the scraper's overhead on decode throughput.
//!
//! With `--chaos`, a fault-injection phase arms a scripted `faultline`
//! plan — panics in the runtime workers, the decode batcher, and the
//! transport layer, plus stalls and connection faults — and drives
//! mixed deadline-stamped traffic through it. The gates prove the
//! degradation story end to end: no client call outlives its retry/
//! deadline budget, every non-faulted reply is bit-exact, the panics
//! land in the stats counters and the flight recorder, health flips
//! off `ok` and pins an incident snapshot, and once the plan disarms
//! the same gateway serves bit-exact traffic and health returns to
//! `ok`. CI runs this phase under both `PANACEA_IO_MODEL` transports.
//!
//! Results go to `BENCH_gateway.json` so the serving-latency trajectory
//! is tracked across PRs. Set `GATEWAY_BENCH_SMOKE=1` to run a reduced
//! matrix (CI uses this; the gates are identical).
//!
//! Run with: `cargo run --release -p panacea-bench --bin gateway_bench`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use panacea_faultline::{Fault, FaultPlan, Scenario};
use panacea_gateway::testutil::{block_model, hidden, models};
use panacea_gateway::{
    AdmissionConfig, CacheConfig, ClientConfig, ErrorKind, Gateway, GatewayClient, GatewayConfig,
    GatewayError, GatewayServer, IoModel, ServerConfig, SloConfig, SloStatus, SloTarget,
};
use panacea_serve::{BatchPolicy, RuntimeConfig};
use serde_json::{json, Value};

const CHAIN_MODEL: &str = "chain";
const BLOCK_MODEL: &str = "block";
const BLOCK_D_MODEL: usize = 16;

/// Server-vs-client p99 agreement gates. The server measures verb time
/// inside the gateway (after request decode, before response encode),
/// so it must sit below the client's full round trip — but above a
/// floor, or the windowed histograms are not measuring the same
/// requests the clients sent. The upper gate gets a constant slack on
/// top of the ratio: histogram buckets round up (≤1/32 relative) and
/// both sides' p99 sits on different single samples.
const P99_UPPER_RATIO: f64 = 1.10;
const P99_UPPER_SLACK_US: f64 = 1_000.0;
const P99_LOWER_RATIO: f64 = 0.02;

/// Exporter overhead gate: with a scraper polling both exposition
/// formats every [`SCRAPE_EVERY`], best-of decode throughput must stay
/// within this fraction of the unscraped baseline. Arms interleave and
/// compare best-of so scheduler noise hits both sides equally. The
/// cadence is still ~20x faster than a production scrape interval, but
/// slow enough that rendering a ~200KB exposition on a single core
/// does not itself dominate the measurement window.
const MAX_EXPORT_OVERHEAD: f64 = 0.03;
const SCRAPE_EVERY: Duration = Duration::from_millis(100);

fn smoke() -> bool {
    std::env::var("GATEWAY_BENCH_SMOKE").is_ok()
}

/// Exact client-side quantile: sorted nearest-rank, no bucketing.
fn quantile_us(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn nominal_gateway() -> Arc<Gateway> {
    let mut all = models(&[CHAIN_MODEL], 21);
    all.push(block_model(BLOCK_MODEL, 22).0);
    Arc::new(Gateway::new(all, GatewayConfig::default()))
}

struct LevelOutcome {
    infer_us: Vec<f64>,
    decode_us: Vec<f64>,
    decode_tokens: usize,
    elapsed: Duration,
}

/// One load trial: `clients` concurrent connections, split between
/// stateless infer traffic and decode sessions, all latencies measured
/// client-side. Payloads are salted per request so the request cache
/// never short-circuits the serving path.
fn run_level(addr: std::net::SocketAddr, clients: usize, requests: usize) -> LevelOutcome {
    let barrier = Arc::new(Barrier::new(clients));
    let mut threads = Vec::new();
    let started = Instant::now();
    for t in 0..clients {
        let barrier = Arc::clone(&barrier);
        threads.push(thread::spawn(move || {
            let mut client = GatewayClient::connect(addr).expect("connect");
            let mut latencies = Vec::with_capacity(requests);
            barrier.wait();
            if t % 2 == 0 {
                // Infer client: unique codes per request (no cache hits).
                for i in 0..requests {
                    let x = panacea_tensor::Matrix::from_fn(16, 1, |r, _| {
                        ((r * 31 + (t * 10_000 + i) * 13) % 200) as i32
                    });
                    let begun = Instant::now();
                    client.infer_codes(CHAIN_MODEL, x).expect("infer served");
                    latencies.push(begun.elapsed().as_secs_f64() * 1e6);
                }
                (latencies, Vec::new(), 0usize)
            } else {
                // Decode client: one session, `requests` single-token
                // steps against live KV state.
                let open = client.session_open(BLOCK_MODEL).expect("session open");
                for i in 0..requests {
                    let token = hidden(BLOCK_D_MODEL, 1, t * 10_000 + i);
                    let begun = Instant::now();
                    client.decode(open.session, token).expect("decode served");
                    latencies.push(begun.elapsed().as_secs_f64() * 1e6);
                }
                client.session_close(open.session).expect("session close");
                (Vec::new(), latencies, requests)
            }
        }));
    }
    let mut infer_us = Vec::new();
    let mut decode_us = Vec::new();
    let mut decode_tokens = 0usize;
    for th in threads {
        let (inf, dec, toks) = th.join().expect("client thread");
        infer_us.extend(inf);
        decode_us.extend(dec);
        decode_tokens += toks;
    }
    let elapsed = started.elapsed();
    infer_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    decode_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    LevelOutcome {
        infer_us,
        decode_us,
        decode_tokens,
        elapsed,
    }
}

/// The overload phase: two permits, a lingering batcher, no cache, and
/// an SLO that tolerates almost no shedding. A synchronized burst must
/// produce per-reason shed counts on the wire and a non-`ok` health
/// verdict.
fn run_overload(burst: usize) -> (u64, u64, f64, String) {
    let gateway = Arc::new(Gateway::new(
        models(&[CHAIN_MODEL], 23),
        GatewayConfig {
            shards: 1,
            runtime: RuntimeConfig {
                workers: 1,
                policy: BatchPolicy {
                    max_batch: 4096,
                    max_wait: Duration::from_millis(150),
                },
            },
            cache: CacheConfig {
                capacity: 0,
                shards: 1,
                ..CacheConfig::default()
            },
            admission: AdmissionConfig {
                max_in_flight: 2,
                max_queue_wait: Duration::from_secs(10),
            },
            slo: SloConfig {
                targets: vec![SloTarget {
                    max_shed_rate: Some(0.05),
                    ..SloTarget::over("availability", Duration::from_secs(10))
                }],
            },
            ..GatewayConfig::default()
        },
    ));
    let mut server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let barrier = Arc::new(Barrier::new(burst));
    let mut threads = Vec::new();
    for t in 0..burst {
        let barrier = Arc::clone(&barrier);
        threads.push(thread::spawn(move || {
            let mut client = GatewayClient::connect(addr).expect("connect");
            let x = panacea_tensor::Matrix::from_fn(16, 1, |r, _| ((r * 31 + t * 13) % 200) as i32);
            barrier.wait();
            match client.infer_codes(CHAIN_MODEL, x) {
                Ok(_) => false,
                Err(e) => {
                    assert!(e.is_overloaded(), "unexpected overload-phase failure: {e}");
                    true
                }
            }
        }));
    }
    let rejected = threads
        .into_iter()
        .map(|th| th.join().expect("burst thread"))
        .filter(|&r| r)
        .count() as u64;

    let mut client = GatewayClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    let health = client.health().expect("health");
    let shed_rate = health
        .targets
        .first()
        .map(|t| t.shed_rate)
        .unwrap_or_default();
    let status = health.status.as_str().to_string();

    assert_eq!(
        stats.sheds.in_flight, rejected,
        "per-reason shed counter disagrees with client-observed rejections"
    );
    assert!(
        rejected > 0,
        "{burst}-way burst over 2 permits shed nothing — overload path untested"
    );
    assert!(
        health.status != SloStatus::Ok,
        "health stayed ok through {rejected} sheds (shed rate {shed_rate:.3})"
    );
    server.shutdown();
    (rejected, stats.sheds.total(), shed_rate, status)
}

/// The `--export` phase: one continuous decode load with the scraper
/// toggled in alternating [`SCRAPE_EVERY`] periods. Scraped periods
/// poll both exposition formats once (so the scrape cadence matches
/// [`SCRAPE_EVERY`]); unscraped periods just let the load run. Tokens
/// are counted per period through a shared counter, and the overhead
/// gate compares scraped vs unscraped rates by the median ratio over
/// adjacent period pairs, remeasuring a failed pass a bounded number
/// of times before failing. Fine-grained interleaving inside a single
/// load cancels the slow scheduling drift that dominates arm-level
/// comparisons on a small box.
fn run_export(smoke: bool) -> Value {
    // Full measured periods (half scraped) after one unrecorded warmup
    // pair; must be a multiple of 4 for the ABBA schedule below.
    let periods = if smoke { 48 } else { 64 };
    // One in-process loader: the A/B isolates the exporter's cost, so
    // the load drives [`Gateway::decode`] directly and sequentially —
    // concurrent TCP clients (the wire phases above) carry scheduler
    // noise an order of magnitude larger than the effect being gated,
    // while a single driver's tokens/s is a stable baseline the
    // scraper's cost shows up against.
    let loaders = 1;

    let gateway = nominal_gateway();

    let stop = Arc::new(AtomicBool::new(false));
    let tokens = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(loaders + 1));
    let mut threads = Vec::new();
    for t in 0..loaders {
        let stop = Arc::clone(&stop);
        let tokens = Arc::clone(&tokens);
        let barrier = Arc::clone(&barrier);
        let gw = Arc::clone(&gateway);
        threads.push(thread::spawn(move || {
            // Full-width chunks execute inline on this thread (no
            // cross-thread handoff), so the baseline tokens/s is CPU
            // time, not condvar wake latency — every millisecond the
            // scraper burns shows up against it directly.
            const CHUNK: usize = 32;
            let mut open = gw.session_open(BLOCK_MODEL).expect("session open");
            barrier.wait();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                // Bounded sessions: per-step cost grows with the KV
                // prefix, so unbounded sessions would put a steady
                // downward drift under the A/B measurement.
                if i > 0 && i.is_multiple_of(8) {
                    gw.session_close(open.session).expect("session close");
                    open = gw.session_open(BLOCK_MODEL).expect("session open");
                }
                let chunk = hidden(BLOCK_D_MODEL, CHUNK, t * 1_000_000 + i);
                gw.decode(open.session, &chunk).expect("decode served");
                tokens.fetch_add(CHUNK as u64, Ordering::Relaxed);
                i += 1;
            }
            gw.session_close(open.session).expect("session close");
        }));
    }
    barrier.wait();

    // A/B measurement against the running load. One pass cannot always
    // resolve a 3% effect on a shared box — the period-scale scheduler
    // noise floor is itself a few percent — so an over-limit median is
    // remeasured (fresh periods, same load) up to [`MAX_ATTEMPTS`]
    // times. Only a cost the box reproduces every time fails the gate.
    const MAX_ATTEMPTS: usize = 3;
    let mut jsonl_lines: Vec<String> = Vec::new();
    let mut scrape_busy = Duration::ZERO;
    let mut attempts = 0usize;
    let (mut median_ratio, mut pairs, mut rate_off, mut rate_on);
    loop {
        attempts += 1;
        let mut period_rates: Vec<(bool, f64)> = Vec::new();
        for p in 0..periods + 2 {
            // ABBA schedule (off,on,on,off repeating): any residual
            // linear rate drift contributes equally to both sides and
            // cancels.
            let scraped = matches!(p % 4, 1 | 2);
            let begun = Instant::now();
            let start_tokens = tokens.load(Ordering::Relaxed);
            if scraped {
                let t = Instant::now();
                let _exposition = gateway.prometheus();
                jsonl_lines.push(gateway.metrics_jsonl());
                scrape_busy += t.elapsed();
            }
            let spent = begun.elapsed();
            if spent < SCRAPE_EVERY {
                thread::sleep(SCRAPE_EVERY - spent);
            }
            let got = tokens.load(Ordering::Relaxed) - start_tokens;
            if p >= 2 {
                // The first pair warms caches and session state
                // unrecorded.
                period_rates.push((scraped, got as f64 / begun.elapsed().as_secs_f64()));
            }
        }

        // Each adjacent period pair holds one scraped and one unscraped
        // period (the ABBA schedule guarantees it) and shares whatever
        // transient machine state it ran under, so its scraped/
        // unscraped ratio isolates the exporter from that transient.
        // The median over pairs then rejects the occasional period
        // eaten by a scheduler stall, which would dominate any mean-
        // or best-based comparison.
        let mut ratios: Vec<f64> = period_rates
            .chunks_exact(2)
            .map(|pair| {
                let (on, off) = if pair[0].0 {
                    (pair[0].1, pair[1].1)
                } else {
                    (pair[1].1, pair[0].1)
                };
                on / off
            })
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        median_ratio = (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0;
        pairs = ratios.len();
        let rate = |want: bool| {
            let picked: Vec<f64> = period_rates
                .iter()
                .filter(|(s, _)| *s == want)
                .map(|(_, r)| r)
                .copied()
                .collect();
            picked.iter().sum::<f64>() / picked.len() as f64
        };
        (rate_off, rate_on) = (rate(false), rate(true));
        if median_ratio >= 1.0 - MAX_EXPORT_OVERHEAD || attempts == MAX_ATTEMPTS {
            break;
        }
        println!(
            "export: attempt {attempts} median overhead {:.3} over limit — remeasuring",
            1.0 - median_ratio
        );
    }
    stop.store(true, Ordering::Relaxed);
    for th in threads {
        th.join().expect("decode client");
    }
    let exposition = gateway.prometheus();

    // The exposition carries the dims the load just exercised plus the
    // per-layer stage histograms, in the standard text format.
    let model_label = format!("model=\"{BLOCK_MODEL}\"");
    for needle in [
        "# TYPE panacea_dim_latency_ns histogram",
        "# TYPE panacea_dim_outcomes_total counter",
        "panacea_dim_latency_ns_bucket{",
        "le=\"+Inf\"",
        model_label.as_str(),
        "stage=\"step\"",
        "outcome=\"ok\"",
        "panacea_stage_duration_ns_bucket{scope=\"gateway\",stage=\"execute\"",
        "scope=\"block\"",
        "panacea_events_total",
    ] {
        assert!(
            exposition.contains(needle),
            "Prometheus exposition missing {needle:?}"
        );
    }

    // Every JSONL line must be one valid JSON object with a wall-clock
    // anchor and the per-dim quantiles.
    assert!(
        !jsonl_lines.is_empty(),
        "scraper collected no JSONL metric lines"
    );
    for line in &jsonl_lines {
        assert!(!line.contains('\n'), "JSONL metric line spans lines");
        let v: Value = serde_json::from_str(line).expect("JSONL metric line parses");
        assert!(
            v.get("unix_ms").and_then(Value::as_u64).unwrap_or(0) > 0,
            "JSONL metric line lacks a unix_ms anchor: {line}"
        );
        assert!(
            v.get("dims").and_then(Value::as_array).is_some(),
            "JSONL metric line lacks a dims array: {line}"
        );
    }

    std::fs::write("BENCH_gateway_metrics.prom", &exposition)
        .expect("write BENCH_gateway_metrics.prom");
    let mut jsonl = jsonl_lines.join("\n");
    jsonl.push('\n');
    std::fs::write("BENCH_gateway_metrics.jsonl", &jsonl)
        .expect("write BENCH_gateway_metrics.jsonl");

    let overhead = 1.0 - median_ratio;
    let per_scrape_ms = scrape_busy.as_secs_f64() * 1e3 / (jsonl_lines.len().max(1) as f64);
    println!(
        "export: {} JSONL scrapes ({per_scrape_ms:.2}ms each), exposition {} bytes, \
         decode {rate_off:.1} tok/s unscraped vs {rate_on:.1} tok/s scraped \
         (median pair overhead {overhead:.3}) ✓",
        jsonl_lines.len(),
        exposition.len()
    );
    assert!(
        median_ratio >= 1.0 - MAX_EXPORT_OVERHEAD,
        "exporter overhead gate: scraping cost {overhead:.3} of decode throughput \
         (median over {pairs} period pairs, worst of {attempts} attempts, \
         limit {MAX_EXPORT_OVERHEAD})"
    );
    json!({
        "periods": periods,
        "scrape_every_ms": SCRAPE_EVERY.as_millis() as u64,
        "jsonl_lines": jsonl_lines.len(),
        "exposition_bytes": exposition.len(),
        "decode_tokens_per_s_unscraped": rate_off,
        "decode_tokens_per_s_scraped": rate_on,
        "overhead": overhead,
        "attempts": attempts,
    })
}

/// C10K gates. The reactor's whole point is that thread count stays
/// O(workers) while connections scale — so the server-side thread
/// growth under hundreds of idle sessions is a hard bound, not a
/// recording. The latency gate compares the reactor against the
/// threaded baseline at the nominal client levels; best-of-3 per arm
/// plus a small absolute slack absorbs single-core scheduler noise on
/// samples this small without hiding a real regression.
const C10K_MAX_IO_THREAD_FACTOR: usize = 2;
const C10K_P99_RATIO: f64 = 1.15;
const C10K_P99_SLACK_US: f64 = 2_000.0;
const C10K_TRIALS: usize = 3;

/// Thread count of this process from `/proc/self/status`. The bench
/// opens its idle sessions from the main thread, so any growth between
/// two readings is server-side spawning.
fn proc_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .expect("read Threads: from /proc/self/status")
}

/// Open file descriptors of this process (`/proc/self/fd` entry count).
fn proc_fds() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .map(|d| d.count())
        .expect("read /proc/self/fd")
}

/// One nominal-load trial against a fresh server under the given io
/// model, returning the client-side infer p99 in microseconds.
fn nominal_infer_p99(io_model: IoModel, clients: usize, requests: usize) -> f64 {
    let gateway = nominal_gateway();
    let mut server = GatewayServer::bind_with(
        gateway,
        "127.0.0.1:0",
        ServerConfig {
            io_model,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let out = run_level(server.local_addr(), clients, requests);
    server.shutdown();
    quantile_us(&out.infer_us, 0.99)
}

/// The `--c10k` phase: hold hundreds of mostly-idle decode sessions
/// open on one reactor-model server while a mixed infer/decode load
/// runs through it, and prove the resource story — file descriptors
/// scale with connections, threads do not. Then race the reactor
/// against the threaded transport at the nominal client levels and
/// gate the p99 regression.
fn run_c10k(smoke: bool, levels: &[usize]) -> Value {
    let sessions = if smoke { 160 } else { 512 };
    let active_clients = 8;
    let active_requests = if smoke { 8 } else { 30 };
    let compare_requests = if smoke { 12 } else { 30 };
    let nofile = sys_poll::raise_nofile_limit().expect("raise RLIMIT_NOFILE");
    assert!(
        nofile as usize > 2 * sessions + 64,
        "nofile limit {nofile} too low for {sessions} sessions"
    );

    let gateway = nominal_gateway();
    let workers = ServerConfig::default().reactor_workers;
    let threads_before = proc_threads();
    let fds_before = proc_fds();
    let mut server = GatewayServer::bind_with(
        Arc::clone(&gateway),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: sessions + 64,
            io_model: IoModel::Reactor,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // Mostly-idle sessions: each one connects, opens a KV session,
    // decodes a single token, then sits idle for the rest of the phase
    // — the long-lived-client shape the reactor exists for. Opened
    // sequentially from this thread, so the thread-count delta below
    // is the server's alone.
    let mut idle = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let mut client = GatewayClient::connect(addr).expect("connect idle session");
        let open = client.session_open(BLOCK_MODEL).expect("session open");
        client
            .decode(open.session, hidden(BLOCK_D_MODEL, 1, 7_000_000 + i))
            .expect("first decode step");
        idle.push((client, open.session));
    }
    let threads_idle = proc_threads();
    let fds_idle = proc_fds();
    let io_threads = threads_idle.saturating_sub(threads_before);
    assert!(
        io_threads <= C10K_MAX_IO_THREAD_FACTOR * workers,
        "{sessions} idle connections grew {io_threads} server threads \
         (gate {C10K_MAX_IO_THREAD_FACTOR}x {workers} workers) — \
         thread count is scaling with connections"
    );
    assert!(
        fds_idle - fds_before >= 2 * sessions,
        "fd count grew only {} for {sessions} loopback sessions",
        fds_idle - fds_before
    );

    let mut probe = GatewayClient::connect(addr).expect("connect probe");
    let stats = probe.stats().expect("stats");
    assert!(
        stats.connections.open as usize > sessions,
        "gateway reports {} open connections with {sessions} sessions held",
        stats.connections.open
    );
    assert_eq!(
        stats.connections.evicted, 0,
        "idle sessions were evicted under no pressure"
    );

    // Mixed active load riding on top of the idle mass: the reactor is
    // polling ~all those registered fds every iteration while these
    // clients need answers.
    let active = run_level(addr, active_clients, active_requests);
    let active_infer_p50 = quantile_us(&active.infer_us, 0.50);
    let active_infer_p99 = quantile_us(&active.infer_us, 0.99);
    let active_decode_p50 = quantile_us(&active.decode_us, 0.50);
    let active_decode_p99 = quantile_us(&active.decode_us, 0.99);

    let stats_after = probe.stats().expect("stats after active load");
    assert_eq!(
        stats_after.sheds.total(),
        0,
        "active load shed requests under the idle-session mass"
    );
    // Every idle session still answers after the storm.
    for (client, session) in &mut idle {
        client
            .decode(*session, hidden(BLOCK_D_MODEL, 1, 8_000_000))
            .expect("idle session still serves after active load");
    }
    for (mut client, session) in idle {
        client.session_close(session).expect("session close");
    }
    drop(probe);
    server.shutdown();
    println!(
        "c10k: {sessions} idle sessions on {io_threads} server threads \
         ({} fds), active p99 infer {active_infer_p99:.1}µs / \
         decode {active_decode_p99:.1}µs ✓",
        fds_idle - fds_before
    );

    // Reactor-vs-threaded latency at the nominal levels.
    let mut comparisons: Vec<Value> = Vec::new();
    for &clients in levels {
        let best = |io_model: IoModel| {
            (0..C10K_TRIALS)
                .map(|_| nominal_infer_p99(io_model, clients, compare_requests))
                .fold(f64::INFINITY, f64::min)
        };
        let threaded_p99 = best(IoModel::Threaded);
        let reactor_p99 = best(IoModel::Reactor);
        let ratio = reactor_p99 / threaded_p99;
        println!(
            "c10k compare {clients:>2} clients: threaded p99 {threaded_p99:>9.1}µs  \
             reactor p99 {reactor_p99:>9.1}µs  ratio {ratio:.3}"
        );
        assert!(
            reactor_p99 <= threaded_p99 * C10K_P99_RATIO + C10K_P99_SLACK_US,
            "reactor infer p99 {reactor_p99:.1}µs regressed past the threaded \
             baseline {threaded_p99:.1}µs at {clients} clients \
             (gate {C10K_P99_RATIO}x + {C10K_P99_SLACK_US}µs)"
        );
        comparisons.push(json!({
            "clients": clients,
            "threaded_infer_p99_us": threaded_p99,
            "reactor_infer_p99_us": reactor_p99,
            "ratio": ratio,
        }));
    }
    println!("c10k gates: threads O(workers), reactor p99 within {C10K_P99_RATIO}x threaded ✓");

    json!({
        "sessions": sessions,
        "nofile_limit": nofile,
        "reactor_workers": workers,
        "server_io_threads": io_threads,
        "fds_added": fds_idle - fds_before,
        "open_connections": stats.connections.open,
        "peak_connections": stats_after.connections.peak,
        "evicted_connections": stats_after.connections.evicted,
        "active_infer_p50_us": active_infer_p50,
        "active_infer_p99_us": active_infer_p99,
        "active_decode_p50_us": active_decode_p50,
        "active_decode_p99_us": active_decode_p99,
        "io_model_comparison": Value::Array(comparisons),
    })
}

/// Chaos-phase budget: every chaos client stamps this deadline on its
/// requests and retries idempotent verbs this many times. The no-hang
/// gate bounds each observed call by the worst case a deadline-bounded
/// retrying client can legitimately take — `(retries + 1)` attempts of
/// `deadline` plus the client's 1s local read-timeout slack — plus a
/// margin for backoff sleeps and scheduling.
const CHAOS_DEADLINE: Duration = Duration::from_millis(800);
const CHAOS_RETRIES: u32 = 3;
const CHAOS_BACKOFF: Duration = Duration::from_millis(10);
const CHAOS_DEADLINE_SLACK: Duration = Duration::from_secs(1);
/// Error-rate SLO window for the chaos gateway: long enough that the
/// whole storm's errors are still inside it when health is probed at
/// the end, short enough that recovery does not stall the bench.
const CHAOS_SLO_WINDOW: Duration = Duration::from_secs(5);

/// Per-thread tallies from one chaos client.
#[derive(Default)]
struct ChaosOutcome {
    ok: usize,
    faulted: usize,
    deadline_exceeded: usize,
    reopened: usize,
    max_call: Duration,
}

impl ChaosOutcome {
    fn absorb(&mut self, other: &ChaosOutcome) {
        self.ok += other.ok;
        self.faulted += other.faulted;
        self.deadline_exceeded += other.deadline_exceeded;
        self.reopened += other.reopened;
        self.max_call = self.max_call.max(other.max_call);
    }
}

/// Failures a chaos client is expected to absorb: injected faults
/// surface as internal errors, expired deadlines, sheds, evicted
/// sessions, or a killed connection. Anything else is a real bug.
fn chaos_tolerable(e: &GatewayError) -> bool {
    match e {
        GatewayError::Remote { kind, .. } => matches!(
            kind,
            ErrorKind::Internal
                | ErrorKind::DeadlineExceeded
                | ErrorKind::Overloaded
                | ErrorKind::UnknownSession
        ),
        GatewayError::Io(_) | GatewayError::Protocol(_) => true,
        _ => false,
    }
}

fn chaos_client(addr: std::net::SocketAddr, seed: u64) -> GatewayClient {
    GatewayClient::connect_with(
        addr,
        ClientConfig {
            deadline: Some(CHAOS_DEADLINE),
            retries: CHAOS_RETRIES,
            backoff: CHAOS_BACKOFF,
            seed,
        },
    )
    .expect("connect chaos client")
}

/// (Re)opens a decode session, redialing through transport faults. The
/// chaos decode client falls back to this whenever its session may have
/// been evicted — the client-side analogue of replaying the prefix.
fn open_with_retry(client: &mut GatewayClient) -> u64 {
    for _ in 0..40 {
        match client.session_open(BLOCK_MODEL) {
            Ok(open) => return open.session,
            Err(e) => {
                assert!(chaos_tolerable(&e), "chaos session_open failed hard: {e}");
                thread::sleep(Duration::from_millis(25));
                let _ = client.reconnect();
            }
        }
    }
    panic!("chaos decode client could not reopen a session");
}

/// The `--chaos` phase: a scripted fault plan fires at least one panic
/// in each serving layer (runtime worker, decode batcher, transport
/// worker), an error return, stalls straddling the client deadline, and
/// reactor connection faults, all while deadline-stamped infer/decode
/// clients drive load. Gates: no call outlives the retry/deadline
/// budget, every successful reply is bit-exact, the faults land in the
/// wire counters and the flight recorder, health flips off `ok` and
/// pins an incident snapshot, and after disarming the same gateway
/// serves bit-exact traffic with health back at `ok`.
fn run_chaos(smoke: bool) -> Value {
    let clients = 4;
    let requests = if smoke { 24 } else { 48 };
    let scenario = Scenario::new()
        // Layer 1 — runtime workers (stateless infer jobs): two panics
        // plus a sub-deadline stall.
        .fire_within("serve.worker.execute", Fault::Panic, 2, 24)
        .fire_at(
            "serve.worker.execute",
            30,
            Fault::Delay(Duration::from_millis(150)),
        )
        // Layer 2 — decode batcher: fused-pass panics with the solo
        // retry pinned to panic too, so a multi-session pass still
        // convicts (and evicts) a poisoned session.
        .fire_within("serve.decode.fused_pass", Fault::Panic, 2, 16)
        .fire_at("serve.decode.solo_retry", 0, Fault::Panic)
        // Layer 3 — transport: a panic that unwinds out of the request
        // handler entirely (the reactor's dispatch job or the threaded
        // model's connection thread catches it), an injected error
        // return, and a stall that overruns the client deadline.
        .fire_at("gateway.execute", 2, Fault::Panic)
        .fire_at("gateway.execute", 7, Fault::Error)
        .fire_at(
            "gateway.execute",
            12,
            Fault::Delay(CHAOS_DEADLINE + Duration::from_millis(400)),
        )
        // Connection faults. These sites are traversed by the reactor
        // transport only; under the threaded model they never fire and
        // the plan is simply quieter.
        .fire_at("netcore.read", 40, Fault::Reset)
        .fire_at("netcore.write", 60, Fault::ShortWrite)
        .fire_within("netcore.dispatch", Fault::Panic, 1, 40);
    let guard = FaultPlan::compile(0xC4A05, &scenario).arm();

    // A gateway whose availability SLO tolerates almost no errors, so
    // the storm provably flips health.
    let mut all = models(&[CHAIN_MODEL], 21);
    all.push(block_model(BLOCK_MODEL, 22).0);
    let gateway = Arc::new(Gateway::new(
        all,
        GatewayConfig {
            slo: SloConfig {
                targets: vec![SloTarget {
                    max_error_rate: Some(0.01),
                    ..SloTarget::over("chaos-availability", CHAOS_SLO_WINDOW)
                }],
            },
            ..GatewayConfig::default()
        },
    ));
    // Default `ServerConfig`: the transport comes from PANACEA_IO_MODEL,
    // so CI exercises the storm under both io models.
    let io_model = ServerConfig::default().io_model;
    let mut server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let barrier = Arc::new(Barrier::new(clients));
    let mut threads = Vec::new();
    for t in 0..clients {
        let barrier = Arc::clone(&barrier);
        let gw = Arc::clone(&gateway);
        threads.push(thread::spawn(move || {
            let mut out = ChaosOutcome::default();
            let mut client = chaos_client(addr, t as u64);
            barrier.wait();
            if t % 2 == 0 {
                // Infer client: every successful reply — original or
                // retried — must be bit-exact against an in-process
                // forward of the same model.
                let model = gw.router().model(CHAIN_MODEL).expect("registered");
                for i in 0..requests {
                    // The salt stays collision-free across clients mod
                    // 200 (the code range), so no chaos request is ever
                    // answered by the request cache — a cached reply
                    // would dodge the very faults being injected.
                    let x = panacea_tensor::Matrix::from_fn(16, 1, |r, _| {
                        ((r * 31 + (t * 60 + i) * 13) % 200) as i32
                    });
                    let expect = model.forward_codes(&x).0;
                    let begun = Instant::now();
                    match client.infer_codes(CHAIN_MODEL, x) {
                        Ok(reply) => {
                            assert_eq!(
                                reply.payload,
                                expect.into(),
                                "non-faulted infer reply diverged under chaos"
                            );
                            out.ok += 1;
                        }
                        Err(e) => {
                            assert!(chaos_tolerable(&e), "chaos infer failed hard: {e}");
                            if matches!(
                                e,
                                GatewayError::Remote {
                                    kind: ErrorKind::DeadlineExceeded,
                                    ..
                                }
                            ) {
                                out.deadline_exceeded += 1;
                            }
                            if matches!(e, GatewayError::Io(_) | GatewayError::Protocol(_)) {
                                let _ = client.reconnect();
                            }
                            out.faulted += 1;
                        }
                    }
                    out.max_call = out.max_call.max(begun.elapsed());
                }
            } else {
                // Decode client: a poisoned eviction or killed
                // connection mid-stream is survived by reopening a
                // fresh session; deadline/overload rejections leave the
                // session's KV state intact, so it keeps stepping.
                let mut session = open_with_retry(&mut client);
                for i in 0..requests {
                    let token = hidden(BLOCK_D_MODEL, 1, t * 10_000 + i);
                    let begun = Instant::now();
                    match client.decode(session, token) {
                        Ok(_) => out.ok += 1,
                        Err(e) => {
                            assert!(chaos_tolerable(&e), "chaos decode failed hard: {e}");
                            let session_intact = matches!(
                                &e,
                                GatewayError::Remote {
                                    kind: ErrorKind::DeadlineExceeded | ErrorKind::Overloaded,
                                    ..
                                }
                            );
                            if matches!(
                                e,
                                GatewayError::Remote {
                                    kind: ErrorKind::DeadlineExceeded,
                                    ..
                                }
                            ) {
                                out.deadline_exceeded += 1;
                            }
                            if matches!(e, GatewayError::Io(_) | GatewayError::Protocol(_)) {
                                let _ = client.reconnect();
                            }
                            if !session_intact {
                                session = open_with_retry(&mut client);
                                out.reopened += 1;
                            }
                            out.faulted += 1;
                        }
                    }
                    out.max_call = out.max_call.max(begun.elapsed());
                }
                let _ = client.session_close(session);
            }
            out
        }));
    }
    let mut infer = ChaosOutcome::default();
    let mut decode = ChaosOutcome::default();
    for (t, th) in threads.into_iter().enumerate() {
        let out = th.join().expect("chaos client thread");
        if t % 2 == 0 {
            infer.absorb(&out);
        } else {
            decode.absorb(&out);
        }
    }
    drop(guard);

    // Gate: no call outlived the retry/deadline budget — graceful
    // degradation means bounded waits, not hangs.
    let hang_bound =
        (CHAOS_DEADLINE + CHAOS_DEADLINE_SLACK) * (CHAOS_RETRIES + 1) + Duration::from_secs(1);
    let max_call = infer.max_call.max(decode.max_call);
    assert!(
        max_call <= hang_bound,
        "a chaos client call took {max_call:?}, past the {hang_bound:?} retry/deadline budget"
    );
    assert!(
        infer.ok + decode.ok >= clients * requests * 8 / 10,
        "chaos storm drowned the load: only {}/{} calls succeeded",
        infer.ok + decode.ok,
        clients * requests
    );
    assert!(
        infer.faulted + decode.faulted >= 1,
        "scripted faults never reached a client — the storm was a no-op"
    );
    assert!(
        infer.deadline_exceeded >= 1,
        "the scripted over-deadline stall never produced a deadline_exceeded"
    );
    assert!(
        decode.reopened >= 1,
        "no decode session was evicted and reopened under the batcher panic"
    );

    // The storm's errors are still inside the SLO window: health must
    // be off `ok`, and the flip pins an incident snapshot carrying the
    // injected panics.
    let mut probe = GatewayClient::connect(addr).expect("connect probe");
    let flipped = probe.health().expect("health");
    assert_ne!(
        flipped.status,
        SloStatus::Ok,
        "health stayed ok through an injected-fault storm"
    );
    let events = probe.events(128).expect("events");
    assert!(
        events.events.iter().any(|e| e.kind == "worker_panic"),
        "no worker_panic event in the flight recorder after the storm"
    );
    let pinned = events
        .pinned
        .expect("health flip pinned no incident snapshot");
    assert!(
        pinned.events.iter().any(|e| e.kind == "worker_panic"),
        "the pinned incident snapshot did not capture the injected panics"
    );

    let stats = probe.stats().expect("stats");
    let worker_panics: u64 = stats.shards.iter().map(|s| s.worker_panics).sum();
    let evicted_poisoned: u64 = stats.shards.iter().map(|s| s.evicted_poisoned).sum();
    let expired_steps: u64 = stats.shards.iter().map(|s| s.expired).sum();
    assert!(
        worker_panics >= 2,
        "expected runtime-worker and decode-batcher panics on the wire, saw {worker_panics}"
    );
    assert!(
        evicted_poisoned >= 1,
        "the poisoned decode session was never evicted"
    );
    assert!(
        stats.connections.worker_panics >= 1,
        "the transport layer never caught (and counted) the handler panic"
    );
    if io_model == IoModel::Reactor {
        // Every pool worker survived its caught panics.
        assert_eq!(
            stats.connections.workers_alive as usize,
            ServerConfig::default().reactor_workers,
            "reactor worker pool did not recover to full strength"
        );
    }

    // Recovery: with the plan disarmed, the same gateway must serve
    // bit-exact traffic and health must drain back to `ok` once the
    // storm's errors age out of the SLO window.
    let model = gateway.router().model(CHAIN_MODEL).expect("registered");
    let recover_started = Instant::now();
    let mut polls = 0usize;
    let recovered_status = loop {
        let x = panacea_tensor::Matrix::from_fn(16, 1, |r, _| ((r * 17 + polls * 29) % 200) as i32);
        let reply = probe
            .infer_codes(CHAIN_MODEL, x.clone())
            .expect("post-chaos infer");
        assert_eq!(
            reply.payload,
            model.forward_codes(&x).0.into(),
            "post-chaos infer reply diverged"
        );
        polls += 1;
        let health = probe.health().expect("health");
        if health.status == SloStatus::Ok {
            break health.status;
        }
        assert!(
            recover_started.elapsed() < CHAOS_SLO_WINDOW + Duration::from_secs(15),
            "health never returned to ok after the plan disarmed: {health:?}"
        );
        thread::sleep(Duration::from_millis(150));
    };
    let recovery = recover_started.elapsed();

    // A fresh session on the stormed gateway must match an untouched
    // reference gateway seeded identically, step for step.
    let reference = nominal_gateway();
    let ref_open = reference.session_open(BLOCK_MODEL).expect("reference open");
    let open = probe.session_open(BLOCK_MODEL).expect("post-chaos open");
    for i in 0..8 {
        let token = hidden(BLOCK_D_MODEL, 1, 9_000_000 + i);
        let got = probe
            .decode(open.session, token.clone())
            .expect("post-chaos decode");
        let want = reference
            .decode(ref_open.session, &token)
            .expect("reference decode");
        assert_eq!(
            got.hidden, want.hidden,
            "post-chaos decode diverged from the reference gateway at step {i}"
        );
    }
    probe.session_close(open.session).expect("session close");
    reference
        .session_close(ref_open.session)
        .expect("reference close");
    server.shutdown();

    println!(
        "chaos ({io_model:?}): {}/{} calls ok, {} faulted ({} deadline_exceeded), \
         {} panics / {} transport panics / {} evictions on the wire, \
         max call {:.0}ms (budget {:.0}ms), health {} -> ok in {:.1}s ✓",
        infer.ok + decode.ok,
        clients * requests,
        infer.faulted + decode.faulted,
        infer.deadline_exceeded + decode.deadline_exceeded,
        worker_panics,
        stats.connections.worker_panics,
        evicted_poisoned,
        max_call.as_secs_f64() * 1e3,
        hang_bound.as_secs_f64() * 1e3,
        flipped.status.as_str(),
        recovery.as_secs_f64()
    );

    json!({
        "io_model": format!("{io_model:?}"),
        "clients": clients,
        "requests_per_client": requests,
        "ok": infer.ok + decode.ok,
        "faulted": infer.faulted + decode.faulted,
        "deadline_exceeded": infer.deadline_exceeded + decode.deadline_exceeded,
        "sessions_reopened": decode.reopened,
        "max_call_ms": max_call.as_secs_f64() * 1e3,
        "hang_bound_ms": hang_bound.as_secs_f64() * 1e3,
        "worker_panics": worker_panics,
        "transport_panics": stats.connections.worker_panics,
        "evicted_poisoned": evicted_poisoned,
        "expired_steps": expired_steps,
        "health_at_storm": flipped.status.as_str(),
        "health_recovered": recovered_status.as_str(),
        "recovery_s": recovery.as_secs_f64(),
    })
}

fn main() {
    let smoke = smoke();
    let levels: &[usize] = if smoke { &[2, 4] } else { &[2, 4, 8] };
    let requests = if smoke { 12 } else { 60 };
    let burst = if smoke { 12 } else { 24 };
    println!(
        "gateway load bench ({} mode): mixed infer/decode over TCP, {requests} requests/client",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:>8}  {:>12}  {:>12}  {:>13}  {:>13}  {:>10}  {:>8}",
        "clients", "inf p50 µs", "inf p99 µs", "srv p99 µs", "dec p50 µs", "tok/s", "health"
    );

    let mut rows: Vec<Value> = Vec::new();
    for &clients in levels {
        let gateway = nominal_gateway();
        let mut server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
        let out = run_level(server.local_addr(), clients, requests);

        // Server-side view, queried inside the metrics window the load
        // just filled.
        let mut probe = GatewayClient::connect(server.local_addr()).expect("connect");
        let metrics = probe.metrics().expect("metrics");
        let infer_dim = metrics
            .dims
            .iter()
            .find(|d| d.model == CHAIN_MODEL && d.verb == "infer" && d.stage == "request")
            .expect("no (chain, infer, request) dimension on the wire");
        let step_dim = metrics
            .dims
            .iter()
            .find(|d| d.model == BLOCK_MODEL && d.verb == "decode" && d.stage == "step")
            .expect("no (block, decode, step) dimension on the wire");
        let health = probe.health().expect("health");
        let stats = probe.stats().expect("stats");
        server.shutdown();

        let infer_p50 = quantile_us(&out.infer_us, 0.50);
        let infer_p99 = quantile_us(&out.infer_us, 0.99);
        let decode_p50 = quantile_us(&out.decode_us, 0.50);
        let decode_p99 = quantile_us(&out.decode_us, 0.99);
        let server_p99 = infer_dim.p99_us as f64;
        let tokens_per_s = out.decode_tokens as f64 / out.elapsed.as_secs_f64();
        let requests_per_s = out.infer_us.len() as f64 / out.elapsed.as_secs_f64();
        println!(
            "{clients:>8}  {infer_p50:>12.1}  {infer_p99:>12.1}  {server_p99:>13.1}  \
             {decode_p50:>13.1}  {tokens_per_s:>10.1}  {:>8}",
            health.status.as_str()
        );

        // Gates: every infer landed in the server's windowed dimension,
        // nothing shed, health ok, and the two p99 views agree.
        assert_eq!(
            infer_dim.ok,
            out.infer_us.len() as u64,
            "server windowed ok-count missed infer requests"
        );
        assert_eq!(stats.sheds.total(), 0, "nominal load shed requests");
        assert_eq!(
            health.status,
            SloStatus::Ok,
            "health not ok under nominal load: {health:?}"
        );
        assert!(
            server_p99 <= infer_p99 * P99_UPPER_RATIO + P99_UPPER_SLACK_US,
            "server windowed p99 {server_p99:.1}µs above client p99 {infer_p99:.1}µs \
             (gate {P99_UPPER_RATIO}x + {P99_UPPER_SLACK_US}µs)"
        );
        assert!(
            server_p99 >= infer_p99 * P99_LOWER_RATIO,
            "server windowed p99 {server_p99:.1}µs implausibly far below client p99 \
             {infer_p99:.1}µs (gate {P99_LOWER_RATIO}x)"
        );
        // Decode side of the same agreement: the session step (KV
        // append + batched pass, measured inside the shard) must sit
        // below the client's decode round trip but not implausibly far
        // below it — the step dimension really is timing these steps.
        let step_p99 = step_dim.p99_us as f64;
        assert!(
            step_p99 <= decode_p99 * P99_UPPER_RATIO + P99_UPPER_SLACK_US,
            "decode step p99 {step_p99:.1}µs above client decode p99 {decode_p99:.1}µs \
             (gate {P99_UPPER_RATIO}x + {P99_UPPER_SLACK_US}µs)"
        );
        assert!(
            step_p99 >= decode_p99 * P99_LOWER_RATIO,
            "decode step p99 {step_p99:.1}µs implausibly far below client decode p99 \
             {decode_p99:.1}µs (gate {P99_LOWER_RATIO}x)"
        );

        rows.push(json!({
            "clients": clients,
            "infer_requests": out.infer_us.len(),
            "decode_tokens": out.decode_tokens,
            "client_infer_p50_us": infer_p50,
            "client_infer_p99_us": infer_p99,
            "client_decode_p50_us": decode_p50,
            "client_decode_p99_us": decode_p99,
            "server_infer_p99_us": server_p99,
            "infer_requests_per_s": requests_per_s,
            "decode_tokens_per_s": tokens_per_s,
            "shed_total": stats.sheds.total(),
            "health": health.status.as_str(),
        }));
    }
    println!("nominal gates: health ok, zero sheds, server/client p99 agreement ✓");

    let (rejected, shed_total, shed_rate, status) = run_overload(burst);
    println!(
        "overload: {burst}-way burst over 2 permits shed {rejected} \
         (shed rate {shed_rate:.3}), health {status} ✓"
    );

    let export = if std::env::args().any(|a| a == "--export") {
        run_export(smoke)
    } else {
        Value::Null
    };

    let connections = if std::env::args().any(|a| a == "--c10k") {
        run_c10k(smoke, levels)
    } else {
        Value::Null
    };

    let chaos = if std::env::args().any(|a| a == "--chaos") {
        run_chaos(smoke)
    } else {
        Value::Null
    };

    let report = json!({
        "bench": "gateway_load",
        "mode": if smoke { "smoke" } else { "full" },
        "requests_per_client": requests,
        "results": Value::Array(rows),
        "overload": json!({
            "burst_clients": burst,
            "admission_permits": 2,
            "rejected": rejected,
            "shed_total": shed_total,
            "shed_rate": shed_rate,
            "health": status,
        }),
        "export": export,
        "connections": connections,
        "chaos": chaos,
    });
    let encoded = serde_json::to_string(&report).expect("shim serializer never fails");
    std::fs::write("BENCH_gateway.json", &encoded).expect("write BENCH_gateway.json");
    println!("wrote BENCH_gateway.json");
}
