//! Fig. 5 — (a) HO-slice value histogram of asymmetrically-quantized
//! activations (few zero slices, a dominant `r` slice); (b) quality of
//! GEMM variants on a BERT-base-like layer (the paper's MNLI panel).

use panacea_bench::{emit, pct};
use panacea_bitslice::{sparsity, SlicedActivation};
use panacea_models::proxy::{accuracy_loss_pp, aggregate_sqnr_db};
use panacea_models::zoo::Benchmark;
use panacea_models::{profile_model, ProfileOptions};
use panacea_quant::dbs::DbsType;
use panacea_quant::{AsymmetricQuantizer, Quantizer};
use panacea_tensor::dist::DistributionKind;

fn main() {
    // --- (a) HO-slice histogram under asymmetric quantization.
    let mut rng = panacea_tensor::seeded_rng(5);
    let x = DistributionKind::AsymmetricGaussian {
        mean: 0.4,
        std: 0.25,
        skew: 0.05,
    }
    .sample_matrix(128, 128, &mut rng);
    let q = AsymmetricQuantizer::calibrate(x.as_slice(), 8);
    let xq = q.quantize_matrix(&x);
    let sx = SlicedActivation::from_uint(&xq, 1, DbsType::Type1).expect("8-bit codes");
    let zp = q.params().zero_point;
    let r = (zp >> 4) as u8;
    let mut counts = [0u64; 16];
    for &s in sx.ho().iter() {
        counts[s as usize] += 1;
    }
    let total: u64 = counts.iter().sum();
    let rows: Vec<Vec<String>> = (0..16)
        .map(|v| {
            vec![
                format!("{v:04b}"),
                format!("{}", counts[v]),
                pct(counts[v] as f64 / total as f64),
                if v == r as usize {
                    "<- r = zp_HO".into()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    emit(
        "Fig. 5(a) — HO slice histogram of asymmetrically quantized activations",
        &["HO slice", "count", "share", ""],
        &rows,
    );
    println!(
        "zero-slice share (skippable by prior bit-slice GEMMs): {}\n\
         r-slice share (skippable by AQS-GEMM):                {}",
        pct(sparsity::act_slice_sparsity(sx.ho(), 0)),
        pct(sparsity::act_slice_sparsity(sx.ho(), r)),
    );

    // --- (b) Accuracy comparison on BERT-base (MNLI proxy).
    let model = Benchmark::BertBase.spec();
    let profiles = profile_model(&model, &ProfileOptions::default());
    let per_layer_asym: Vec<(f64, u64)> = profiles
        .iter()
        .map(|p| (p.sqnr_asym_db, p.spec.total_macs()))
        .collect();
    let per_layer_sym: Vec<(f64, u64)> = profiles
        .iter()
        .map(|p| (p.sqnr_sym_db, p.spec.total_macs()))
        .collect();
    let base_acc = model.fp16_quality;
    let acc = |sqnr: f64| base_acc - accuracy_loss_pp(sqnr);
    let asym_sqnr = aggregate_sqnr_db(&per_layer_asym);
    let sym_sqnr = aggregate_sqnr_db(&per_layer_sym);
    let rows = vec![
        vec!["FP32 GEMM".to_string(), format!("{base_acc:.1}")],
        vec![
            "int GEMM, symmetric acts".to_string(),
            format!("{:.1}", acc(sym_sqnr)),
        ],
        vec![
            "int GEMM, asymmetric acts".to_string(),
            format!("{:.1}", acc(asym_sqnr)),
        ],
        // AQS-GEMM is bit-exact w.r.t. the asymmetric integer GEMM.
        vec![
            "AQS-GEMM (ours, exact)".to_string(),
            format!("{:.1}", acc(asym_sqnr)),
        ],
    ];
    emit(
        "Fig. 5(b) — accuracy on BERT-base / MNLI (proxy metric)",
        &["GEMM variant", "accuracy (%)"],
        &rows,
    );
    println!(
        "Paper shape: asymmetric ≥ symmetric, and AQS-GEMM matches the asymmetric\n\
         integer GEMM exactly (it is a lossless re-organization)."
    );
}
