//! Fig. 17 — energy efficiency and perplexity on the LLM benchmarks:
//! OPT-350M / 1.3B / 2.7B and Llama-3.2-1B / 3B (mixed precision for the
//! Llama down-projection inputs).

use panacea_bench::{emit, f3, ratio, to_layer_work, ComparisonSet, EngineKind};
use panacea_models::proxy::{aggregate_sqnr_db, perplexity_proxy};
use panacea_models::zoo::Benchmark;
use panacea_models::{profile_model, ProfileOptions};
use panacea_sim::{simulate_model, Accelerator};

fn main() {
    let set = ComparisonSet::default_set();
    let clock = set.budget().clock_mhz;
    let mut rows = Vec::new();

    for b in [
        Benchmark::Opt350m,
        Benchmark::Opt1_3b,
        Benchmark::Opt2_7b,
        Benchmark::Llama1b,
        Benchmark::Llama3b,
    ] {
        let model = b.spec();
        let profiles = profile_model(&model, &ProfileOptions::default());
        let pan: Vec<_> = profiles
            .iter()
            .map(|p| to_layer_work(p, EngineKind::Panacea))
            .collect();
        let sib: Vec<_> = profiles
            .iter()
            .map(|p| to_layer_work(p, EngineKind::Sibia))
            .collect();
        let dense: Vec<_> = profiles
            .iter()
            .map(|p| to_layer_work(p, EngineKind::Dense))
            .collect();

        let asym: Vec<(f64, u64)> = profiles
            .iter()
            .map(|p| (p.sqnr_asym_db, p.spec.total_macs()))
            .collect();
        let dbs: Vec<(f64, u64)> = profiles
            .iter()
            .map(|p| (p.sqnr_dbs_db, p.spec.total_macs()))
            .collect();
        let sym: Vec<(f64, u64)> = profiles
            .iter()
            .map(|p| (p.sqnr_sym_db, p.spec.total_macs()))
            .collect();
        let ppl_asym = perplexity_proxy(model.fp16_quality, aggregate_sqnr_db(&asym));
        let ppl_dbs = perplexity_proxy(model.fp16_quality, aggregate_sqnr_db(&dbs));
        let ppl_sym = perplexity_proxy(model.fp16_quality, aggregate_sqnr_db(&sym));

        let p_perf = simulate_model(&set.panacea, &pan, clock);
        for (acc, layers, ppl) in [
            (&set.sa_ws as &dyn Accelerator, &dense, ppl_asym),
            (&set.sa_os, &dense, ppl_asym),
            (&set.simd, &dense, ppl_asym),
            (&set.sibia, &sib, ppl_sym),
            (&set.panacea, &pan, ppl_dbs),
        ] {
            let perf = simulate_model(acc, layers, clock);
            rows.push(vec![
                model.name.clone(),
                acc.name().to_string(),
                f3(perf.tops_per_w),
                format!("{:.2}", perf.tops),
                format!("{ppl:.1} (fp16 {:.1})", model.fp16_quality),
                ratio(p_perf.tops_per_w / perf.tops_per_w),
            ]);
        }
    }
    emit(
        "Fig. 17 — LLM energy efficiency and perplexity (WikiText-2 proxy)",
        &[
            "model",
            "design",
            "TOPS/W",
            "TOPS",
            "perplexity",
            "Pan eff. gain",
        ],
        &rows,
    );
    println!(
        "Paper shape: Panacea 1.57x/1.97x/1.96x more efficient than Sibia on\n\
         OPT-350M/1.3B/2.7B with FP16-like PPL; on Llama-3.2-3B 2.77x/2.11x/\n\
         4.24x/1.47x vs SA-WS/SA-OS/SIMD/Sibia under mixed precision."
    );
}
