//! Fig. 15 — (a) energy breakdown per design and benchmark,
//! (b) throughput, and (c) relative area cost of ZPM / DBS / DTP,
//! plus the GPT-2 ablation the paper quotes (ZPM: −10% energy / +17%
//! throughput; DBS: −11% / +12%; DTP: −8.9% / +7.6%).

use panacea_bench::{emit, f3, ratio, to_layer_work, ComparisonSet, EngineKind};
use panacea_models::zoo::Benchmark;
use panacea_models::{profile_model, ProfileOptions};
use panacea_quant::dbs::DbsConfig;
use panacea_sim::arch::PanaceaConfig;
use panacea_sim::panacea::PanaceaSim;
use panacea_sim::{simulate_model, Accelerator};

fn main() {
    let set = ComparisonSet::default_set();
    let clock = set.budget().clock_mhz;

    // --- (a)+(b): breakdown and throughput across benchmarks.
    let mut rows = Vec::new();
    for b in [
        Benchmark::DeitBase,
        Benchmark::BertBase,
        Benchmark::Gpt2,
        Benchmark::Resnet18,
    ] {
        let model = b.spec();
        let profiles = profile_model(&model, &ProfileOptions::default());
        let pan: Vec<_> = profiles
            .iter()
            .map(|p| to_layer_work(p, EngineKind::Panacea))
            .collect();
        let sib: Vec<_> = profiles
            .iter()
            .map(|p| to_layer_work(p, EngineKind::Sibia))
            .collect();
        let dense: Vec<_> = profiles
            .iter()
            .map(|p| to_layer_work(p, EngineKind::Dense))
            .collect();

        for (acc, layers) in [
            (&set.sa_ws as &dyn Accelerator, &dense),
            (&set.sa_os, &dense),
            (&set.simd, &dense),
            (&set.sibia, &sib),
            (&set.panacea, &pan),
        ] {
            let perf = simulate_model(acc, layers, clock);
            let e = perf.energy;
            let tot = e.total_pj();
            rows.push(vec![
                model.name.clone(),
                acc.name().to_string(),
                f3(tot / 1e9), // mJ
                format!("{:.0}%", e.compute_pj / tot * 100.0),
                format!("{:.0}%", e.sram_pj / tot * 100.0),
                format!(
                    "{:.0}%",
                    (e.buffer_pj + e.other_pj + e.static_pj) / tot * 100.0
                ),
                format!("{:.0}%", e.dram_pj / tot * 100.0),
                format!("{:.2}", perf.tops),
                f3(perf.tops_per_w),
            ]);
        }
    }
    emit(
        "Fig. 15(a,b) — energy breakdown (mJ, % by component) and throughput",
        &[
            "model",
            "design",
            "energy mJ",
            "compute",
            "SRAM",
            "buf/other",
            "DRAM",
            "TOPS",
            "TOPS/W",
        ],
        &rows,
    );

    // --- GPT-2 ablation: + ZPM, + DBS, + DTP, cumulatively.
    let gpt2 = Benchmark::Gpt2.spec();
    let steps: [(&str, ProfileOptions, bool); 4] = [
        ("baseline (AQS only)", ProfileOptions::baseline(), false),
        (
            "+ ZPM",
            ProfileOptions {
                zpm: true,
                dbs: None,
                ..ProfileOptions::default()
            },
            false,
        ),
        (
            "+ DBS",
            ProfileOptions {
                zpm: true,
                dbs: Some(DbsConfig::default()),
                ..ProfileOptions::default()
            },
            false,
        ),
        (
            "+ DTP",
            ProfileOptions {
                zpm: true,
                dbs: Some(DbsConfig::default()),
                ..ProfileOptions::default()
            },
            true,
        ),
    ];
    let mut rows = Vec::new();
    let mut prev: Option<(f64, f64)> = None;
    for (label, opts, dtp) in steps {
        let profiles = profile_model(&gpt2, &opts);
        let layers: Vec<_> = profiles
            .iter()
            .map(|p| to_layer_work(p, EngineKind::Panacea))
            .collect();
        let sim = PanaceaSim::new(PanaceaConfig {
            dtp,
            zpm: opts.zpm,
            dbs: opts.dbs.is_some(),
            ..PanaceaConfig::default()
        });
        let perf = simulate_model(&sim, &layers, clock);
        let e = perf.energy.total_pj();
        let (de, dt) = match prev {
            Some((pe, pt)) => (
                format!("{:+.1}%", (e / pe - 1.0) * 100.0),
                format!("{:+.1}%", (perf.tops / pt - 1.0) * 100.0),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        rows.push(vec![
            label.to_string(),
            f3(e / 1e9),
            format!("{:.2}", perf.tops),
            de,
            dt,
        ]);
        prev = Some((e, perf.tops));
    }
    emit(
        "Fig. 15 — GPT-2 ablation (cumulative ZPM / DBS / DTP)",
        &[
            "configuration",
            "energy mJ",
            "TOPS",
            "Δ energy",
            "Δ throughput",
        ],
        &rows,
    );

    // --- (c): relative area.
    let base = PanaceaSim::new(PanaceaConfig {
        dtp: false,
        zpm: false,
        dbs: false,
        ..PanaceaConfig::default()
    });
    let zpm = PanaceaSim::new(PanaceaConfig {
        dtp: false,
        dbs: false,
        ..PanaceaConfig::default()
    });
    let dbs = PanaceaSim::new(PanaceaConfig {
        dtp: false,
        ..PanaceaConfig::default()
    });
    let full = PanaceaSim::new(PanaceaConfig::default());
    let a0 = base.area_mm2();
    let rows = vec![
        vec!["baseline".to_string(), f3(a0), ratio(1.0)],
        vec![
            "+ ZPM".to_string(),
            f3(zpm.area_mm2()),
            ratio(zpm.area_mm2() / a0),
        ],
        vec![
            "+ DBS".to_string(),
            f3(dbs.area_mm2()),
            ratio(dbs.area_mm2() / a0),
        ],
        vec![
            "+ DTP".to_string(),
            f3(full.area_mm2()),
            ratio(full.area_mm2() / a0),
        ],
    ];
    emit(
        "Fig. 15(c) — relative area cost of the proposed methods",
        &["configuration", "core area mm^2", "relative"],
        &rows,
    );
    println!(
        "Paper shape: ZPM is area-free, DBS adds only shifters, DTP adds buffers;\n\
         on GPT-2 each step buys energy and throughput (paper: ZPM -10%/+17%,\n\
         DBS -11%/+12%, DTP -8.9%/+7.6%)."
    );
}
