//! Fig. 14 — (a) per-layer activation HO vector sparsity of DeiT-base
//! under the previous bit-slice GEMM vs AQS-GEMM (+ ZPM/DBS);
//! (b) weight/activation HO vector sparsity of Sibia vs Panacea across
//! DeiT-base, BERT-base and GPT-2.

use panacea_bench::{emit, pct};
use panacea_models::zoo::Benchmark;
use panacea_models::{profile_model, ProfileOptions};

fn main() {
    // --- (a) per-layer, DeiT-base.
    let deit = Benchmark::DeitBase.spec();
    let base = profile_model(&deit, &ProfileOptions::baseline());
    let opt = profile_model(&deit, &ProfileOptions::default());
    let rows: Vec<Vec<String>> = base
        .iter()
        .zip(&opt)
        .map(|(b, o)| {
            vec![
                b.spec.name.clone(),
                pct(b.rho_x_zero_only),
                pct(b.rho_x),
                pct(o.rho_x),
                format!("{}", o.dbs_type),
            ]
        })
        .collect();
    emit(
        "Fig. 14(a) — DeiT-base activation HO vector sparsity per layer",
        &[
            "layer",
            "prev bit-slice (zero-only)",
            "AQS-GEMM",
            "AQS + ZPM + DBS",
            "DBS type",
        ],
        &rows,
    );
    println!(
        "Paper shape: the previous bit-slice GEMM sees sparsity only on the\n\
         post-GELU MLP.FC2 inputs; AQS-GEMM exposes sparsity on every layer and\n\
         ZPM/DBS push wide layers higher."
    );

    // --- (b) Sibia vs Panacea across three models.
    let mut rows = Vec::new();
    for b in [Benchmark::DeitBase, Benchmark::BertBase, Benchmark::Gpt2] {
        let model = b.spec();
        let profiles = profile_model(&model, &ProfileOptions::default());
        let avg = |f: &dyn Fn(&panacea_models::LayerProfile) -> f64| {
            profiles.iter().map(f).sum::<f64>() / profiles.len() as f64
        };
        rows.push(vec![
            model.name.clone(),
            pct(avg(&|p| p.rho_w)),
            pct(avg(&|p| p.rho_x_sibia)),
            pct(avg(&|p| p.rho_x)),
        ]);
    }
    emit(
        "Fig. 14(b) — mean HO vector sparsity (weights shared; activations per engine)",
        &[
            "model",
            "rho_w (SBR, both)",
            "rho_x Sibia (sym)",
            "rho_x Panacea (asym)",
        ],
        &rows,
    );
    println!(
        "Paper shape: both engines share the weight sparsity; Panacea's AQS-GEMM\n\
         reaches comparable-or-higher activation vector sparsity than Sibia while\n\
         using the more accurate asymmetric quantization."
    );
}
