//! Figs. 9–10 — distribution-based bit-slicing: type classification by
//! `std × z` against the z-score table, the per-type slicing rules, and
//! the sparsity gain on progressively wider distributions.

use panacea_bench::{emit, pct};
use panacea_bitslice::{sparsity, SlicedActivation};
use panacea_quant::dbs::{dbs_slices, DbsConfig, DbsType};
use panacea_quant::{ActivationCalibrator, Quantizer};
use panacea_tensor::dist::DistributionKind;

fn main() {
    // --- Fig. 10: the slicing rules on the paper's example value.
    let example = 0b0101_0101;
    let rows: Vec<Vec<String>> = DbsType::all()
        .iter()
        .map(|&ty| {
            let (ho, lo) = dbs_slices(example, ty);
            vec![
                format!("{ty}"),
                format!("l = {}", ty.lo_bits()),
                format!("{ho:04b}"),
                format!("{lo:04b}"),
                format!("<< {}", ty.lo_shift()),
                format!("{}", 1 << ty.lo_bits()),
            ]
        })
        .collect();
    emit(
        "Fig. 10 — DBS slicing rules applied to 01010101b",
        &[
            "type",
            "LO width",
            "HO cont.",
            "LO cont.",
            "S-ACC shift",
            "skip-range width",
        ],
        &rows,
    );

    // --- Fig. 9: classification and sparsity across distribution widths.
    let mut rows = Vec::new();
    for &(label, std) in &[
        ("narrow", 0.01f32),
        ("medium", 0.035),
        ("wide", 0.08),
        ("very wide", 0.20),
    ] {
        let mut rng = panacea_tensor::seeded_rng(9);
        let mut data = DistributionKind::Gaussian { mean: 0.0, std }
            .sample_matrix(128, 128, &mut rng)
            .into_vec();
        data.push(-1.0);
        data.push(1.0);

        let sparsity_of = |dbs: Option<DbsConfig>| -> (DbsType, f64) {
            let mut cal = ActivationCalibrator::new(8).with_zpm(true);
            if let Some(cfg) = dbs {
                cal = cal.with_dbs(cfg);
            }
            cal.observe_slice(&data);
            let cfg = cal.finalize();
            let mut codes: Vec<i32> = data.iter().map(|&v| cfg.quantizer.quantize(v)).collect();
            codes.truncate(codes.len() / 4 * 4);
            let m = panacea_tensor::Matrix::from_vec(codes.len() / 4, 4, codes).expect("shape");
            let sx = SlicedActivation::from_uint(&m, 1, cfg.dbs_type).expect("codes");
            (
                cfg.dbs_type,
                sparsity::act_slice_sparsity(sx.ho(), cfg.frequent_ho_slice),
            )
        };
        let (_, s_off) = sparsity_of(None);
        let (ty, s_on) = sparsity_of(Some(DbsConfig::default()));
        rows.push(vec![
            label.to_string(),
            format!("{std}"),
            format!("{ty}"),
            pct(s_off),
            pct(s_on),
            format!("{:+.1}%p", (s_on - s_off) * 100.0),
        ]);
    }
    emit(
        "Fig. 9 — DBS classification and HO slice sparsity gain",
        &[
            "distribution",
            "std",
            "DBS type",
            "sparsity (l=4)",
            "sparsity (DBS)",
            "gain",
        ],
        &rows,
    );
    println!(
        "Paper shape: wider distributions are classified type-2/3 and recover\n\
         high slice sparsity (paper: +20% average, >50% on some layers)."
    );
}
