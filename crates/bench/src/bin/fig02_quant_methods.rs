//! Fig. 2 — symmetric vs asymmetric uniform quantization of a one-sided
//! tensor: range utilization and reconstruction error.

use panacea_bench::{emit, f3};
use panacea_quant::{AsymmetricQuantizer, Quantizer, SymmetricQuantizer};
use panacea_tensor::{dist::DistributionKind, stats};

fn main() {
    let mut rng = panacea_tensor::seeded_rng(2);
    // A typical asymmetric activation tensor: one-sided with a small
    // negative lobe (post-GELU-like).
    let x = DistributionKind::AsymmetricGaussian {
        mean: 0.6,
        std: 0.35,
        skew: 0.08,
    }
    .sample_matrix(256, 256, &mut rng);

    let sym = SymmetricQuantizer::calibrate(x.as_slice(), 8);
    let asym = AsymmetricQuantizer::calibrate(x.as_slice(), 8);

    let sym_codes: Vec<i32> = x.iter().map(|&v| sym.quantize(v)).collect();
    let asym_codes: Vec<i32> = x.iter().map(|&v| asym.quantize(v)).collect();
    let used = |codes: &[i32]| {
        let mut seen = std::collections::HashSet::new();
        seen.extend(codes.iter().copied());
        seen.len()
    };
    let mse_of = |q: &dyn Quantizer, codes: &[i32]| {
        let deq: Vec<f32> = codes.iter().map(|&c| q.dequantize(c)).collect();
        stats::mse(x.as_slice(), &deq)
    };

    let rows = vec![
        vec![
            "symmetric (Eq. 1)".to_string(),
            format!("{}", sym.params().zero_point),
            f3(f64::from(sym.params().scale)),
            format!("{}/256", used(&sym_codes)),
            format!("{:.2e}", mse_of(&sym, &sym_codes)),
        ],
        vec![
            "asymmetric (Eq. 2)".to_string(),
            format!("{}", asym.params().zero_point),
            f3(f64::from(asym.params().scale)),
            format!("{}/256", used(&asym_codes)),
            format!("{:.2e}", mse_of(&asym, &asym_codes)),
        ],
    ];
    emit(
        "Fig. 2 — uniform quantization of a one-sided activation tensor (8-bit)",
        &["scheme", "zero-point", "scale", "codes used", "MSE"],
        &rows,
    );
    println!(
        "Paper shape: asymmetric uses the full unsigned range (more codes) and\n\
         achieves lower reconstruction error on one-sided data."
    );
}
