//! Fig. 18 — decoupling the two contributions on OPT-2.7B:
//! (a) symmetric vs asymmetric quantization *on Panacea* (quality differs,
//! hardware cost stays flat thanks to ZPM/DBS);
//! (b) AQS-GEMM (skips zero *and* r-valued slices) vs a zero-skip-only
//! engine on the same asymmetric data (paper: 1.67× energy efficiency,
//! 2.10× throughput).

use panacea_bench::{emit, f3, ratio, to_layer_work, ComparisonSet, EngineKind};
use panacea_models::proxy::{aggregate_sqnr_db, perplexity_proxy};
use panacea_models::zoo::Benchmark;
use panacea_models::{profile_model, ProfileOptions};
use panacea_sim::simulate_model;

fn main() {
    let set = ComparisonSet::default_set();
    let clock = set.budget().clock_mhz;
    let model = Benchmark::Opt2_7b.spec();
    let profiles = profile_model(&model, &ProfileOptions::default());

    // --- (a) symmetric vs asymmetric quantization on Panacea.
    // Symmetric = zero-point pinned mid-range (paper: zp = 128): the
    // skip machinery still works (r = 128 >> 4 = 8), ZPM/DBS keep the
    // sparsity, so efficiency is flat — only quality moves.
    let pan_layers: Vec<_> = profiles
        .iter()
        .map(|p| to_layer_work(p, EngineKind::Panacea))
        .collect();
    let asym_sqnr = aggregate_sqnr_db(
        &profiles
            .iter()
            .map(|p| (p.sqnr_dbs_db, p.spec.total_macs()))
            .collect::<Vec<_>>(),
    );
    let sym_sqnr = aggregate_sqnr_db(
        &profiles
            .iter()
            .map(|p| (p.sqnr_sym_db, p.spec.total_macs()))
            .collect::<Vec<_>>(),
    );
    let perf = simulate_model(&set.panacea, &pan_layers, clock);
    let rows = vec![
        vec![
            "Panacea, symmetric acts (zp = 128)".to_string(),
            f3(perf.tops_per_w),
            format!("{:.2}", perf.tops),
            format!("{:.1}", perplexity_proxy(model.fp16_quality, sym_sqnr)),
        ],
        vec![
            "Panacea, asymmetric acts".to_string(),
            f3(perf.tops_per_w),
            format!("{:.2}", perf.tops),
            format!("{:.1}", perplexity_proxy(model.fp16_quality, asym_sqnr)),
        ],
    ];
    emit(
        "Fig. 18(a) — quantization scheme on Panacea (OPT-2.7B)",
        &["configuration", "TOPS/W", "TOPS", "perplexity"],
        &rows,
    );

    // --- (b) AQS-GEMM vs zero-slice skipping only.
    let zero_layers: Vec<_> = profiles
        .iter()
        .map(|p| to_layer_work(p, EngineKind::PanaceaZeroSkipOnly))
        .collect();
    let full = simulate_model(&set.panacea, &pan_layers, clock);
    let zero = simulate_model(&set.panacea, &zero_layers, clock);
    let rows = vec![
        vec![
            "skip zero slices only".to_string(),
            f3(zero.tops_per_w),
            format!("{:.2}", zero.tops),
            ratio(1.0),
            ratio(1.0),
        ],
        vec![
            "AQS-GEMM (zero + r-valued)".to_string(),
            f3(full.tops_per_w),
            format!("{:.2}", full.tops),
            ratio(full.tops_per_w / zero.tops_per_w),
            ratio(full.tops / zero.tops),
        ],
    ];
    emit(
        "Fig. 18(b) — AQS-GEMM vs zero-skip-only on asymmetric data (OPT-2.7B)",
        &["engine", "TOPS/W", "TOPS", "eff. gain", "thpt gain"],
        &rows,
    );
    println!(
        "Paper shape: (a) same efficiency, better PPL for asymmetric; (b) AQS-GEMM\n\
         1.67x energy efficiency and 2.10x throughput over zero-skip-only, with\n\
         identical (exact) outputs."
    );
}
