//! Fig. 8 — zero-point manipulation on an OPT-2.7B FC-layer-like
//! activation distribution: skip-range coverage without vs with ZPM
//! (the paper reports 68% → 98% for `zp = 161`).

use panacea_bench::{emit, pct};
use panacea_quant::zpm::{frequent_slice_without_zpm, manipulate_zero_point};
use panacea_quant::{AsymmetricQuantizer, Quantizer};
use panacea_tensor::dist::DistributionKind;
use panacea_tensor::stats::Histogram;

fn main() {
    let mut rng = panacea_tensor::seeded_rng(8);
    // OPT FC-layer regime: tight near-zero core with rare outliers that
    // stretch the quantization range asymmetrically so the calibrated
    // zero-point lands mid-range (the paper's example: zp = 161).
    let mut x = DistributionKind::Gaussian {
        mean: 0.0,
        std: 0.012,
    }
    .sample_matrix(256, 256, &mut rng)
    .into_vec();
    x.push(-2.5); // outlier pinning min
    x.push(1.5); // outlier pinning max
    let q = AsymmetricQuantizer::calibrate(&x, 8);
    let zp = q.params().zero_point;

    let mut hist = Histogram::new(0, 255);
    for &v in &x {
        hist.record(q.quantize(v));
    }

    // Without ZPM: skip range of r = zp_HO.
    let r0 = frequent_slice_without_zpm(zp, 4);
    let lo0 = i32::from(r0) << 4;
    let cov0 = hist.fraction_in(lo0, lo0 + 15);

    // With ZPM (Eq. 7): re-quantize with the manipulated zero-point.
    let z = manipulate_zero_point(zp, 8, 4);
    let q1 = q.with_zero_point(z.zero_point);
    let mut hist1 = Histogram::new(0, 255);
    for &v in &x {
        hist1.record(q1.quantize(v));
    }
    let cov1 = hist1.fraction_in(z.skip_lo, z.skip_hi);

    let rows = vec![
        vec![
            "without ZPM".to_string(),
            format!("{zp}"),
            format!("{r0:04b}"),
            format!("[{lo0}, {}]", lo0 + 15),
            pct(cov0),
        ],
        vec![
            "with ZPM (Eq. 7)".to_string(),
            format!("{}", z.zero_point),
            format!("{:04b}", z.frequent_ho_slice),
            format!("[{}, {}]", z.skip_lo, z.skip_hi),
            pct(cov1),
        ],
    ];
    emit(
        "Fig. 8 — ZPM on an OPT-2.7B-like FC activation (8-bit, l = 4)",
        &["configuration", "zero-point", "r", "skip range", "coverage"],
        &rows,
    );
    println!(
        "Paper shape: moving zp to the centre of its skip range raises the\n\
         slice-level coverage from ~68% to ~98% (paper: 68% -> 98%).\n\
         Measured here: {} -> {}.",
        pct(cov0),
        pct(cov1)
    );
    assert!(cov1 >= cov0, "ZPM must not reduce coverage");
}
