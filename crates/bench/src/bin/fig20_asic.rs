//! Fig. 20 — ASIC-level comparison table: module inventory, area, and
//! peak/effective performance of the bit-slice accelerators.
//!
//! LUTein (HPCA'24) is not re-modeled here (its LUT-based datapath is out
//! of scope); its row reports the published figures for context, marked
//! as such. Sibia and Panacea rows come from this repository's models.

use panacea_bench::{emit, f3, to_layer_work, ComparisonSet, EngineKind};
use panacea_models::zoo::Benchmark;
use panacea_models::{profile_model, ProfileOptions};
use panacea_sim::{simulate_model, Accelerator};

fn main() {
    let set = ComparisonSet::default_set();
    let clock = set.budget().clock_mhz;

    // Representative effective performance: GPT-2 benchmark.
    let model = Benchmark::Gpt2.spec();
    let profiles = profile_model(&model, &ProfileOptions::default());
    let pan: Vec<_> = profiles
        .iter()
        .map(|p| to_layer_work(p, EngineKind::Panacea))
        .collect();
    let sib: Vec<_> = profiles
        .iter()
        .map(|p| to_layer_work(p, EngineKind::Sibia))
        .collect();
    let p = simulate_model(&set.panacea, &pan, clock);
    let s = simulate_model(&set.sibia, &sib, clock);

    let rows = vec![
        vec![
            "Sibia (HPCA'23)".to_string(),
            "28nm".to_string(),
            "1536".to_string(),
            f3(set.sibia.area_mm2()),
            format!("{:.0}", clock),
            format!("{:.2}", s.tops),
            f3(s.tops_per_w),
            "sym only".to_string(),
        ],
        vec![
            "LUTein (HPCA'24, reported)".to_string(),
            "28nm".to_string(),
            "n/a (LUT)".to_string(),
            "n/a".to_string(),
            "n/a".to_string(),
            "n/a".to_string(),
            "n/a".to_string(),
            "sym only".to_string(),
        ],
        vec![
            "Panacea (this work)".to_string(),
            "28nm".to_string(),
            "3072".to_string(),
            f3(set.panacea.area_mm2()),
            format!("{:.0}", clock),
            format!("{:.2}", p.tops),
            f3(p.tops_per_w),
            "sym + asym".to_string(),
        ],
    ];
    emit(
        "Fig. 20 — ASIC comparison (GPT-2 effective numbers for modeled designs)",
        &[
            "design",
            "node",
            "4b muls",
            "area mm^2",
            "MHz",
            "eff. TOPS",
            "TOPS/W",
            "quantization",
        ],
        &rows,
    );
    println!(
        "Paper shape: Panacea supports 2x more multipliers and asymmetric\n\
         quantization with a small core-area overhead over Sibia, while\n\
         delivering higher effective throughput and efficiency.\n\
         (Sibia modeled with 1536 active multipliers' worth of OPCs in its own\n\
         paper; here both are modeled under the iso-resource 3072 budget.)"
    );
}
