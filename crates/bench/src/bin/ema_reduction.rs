//! §III-B text claims — external-memory-access and SRAM-access reduction
//! of AQS-GEMM's HO-slice compression vs the uncompressed Sibia format:
//! paper: EMA −60.5% (DeiT-base) / −46.8% (GPT-2), SRAM −29.2% / −27.4%.

use panacea_bench::{emit, pct, to_layer_work, ComparisonSet, EngineKind};
use panacea_models::zoo::Benchmark;
use panacea_models::{profile_model, ProfileOptions};
use panacea_sim::simulate_model;

fn main() {
    let set = ComparisonSet::default_set();
    let clock = set.budget().clock_mhz;
    let mut rows = Vec::new();
    for b in [Benchmark::DeitBase, Benchmark::Gpt2] {
        let model = b.spec();
        let profiles = profile_model(&model, &ProfileOptions::default());
        let pan: Vec<_> = profiles
            .iter()
            .map(|p| to_layer_work(p, EngineKind::Panacea))
            .collect();
        let sib: Vec<_> = profiles
            .iter()
            .map(|p| to_layer_work(p, EngineKind::Sibia))
            .collect();
        let p = simulate_model(&set.panacea, &pan, clock);
        let s = simulate_model(&set.sibia, &sib, clock);
        rows.push(vec![
            model.name.clone(),
            format!("{:.1} MB", s.dram_bytes / 1e6),
            format!("{:.1} MB", p.dram_bytes / 1e6),
            pct(1.0 - p.dram_bytes / s.dram_bytes),
            format!("{:.1} MB", s.sram_bytes / 1e6),
            format!("{:.1} MB", p.sram_bytes / 1e6),
            pct(1.0 - p.sram_bytes / s.sram_bytes),
        ]);
    }
    emit(
        "§III-B — memory-access reduction of HO-slice compression vs Sibia",
        &[
            "model",
            "Sibia EMA",
            "Panacea EMA",
            "EMA saved",
            "Sibia SRAM",
            "Panacea SRAM",
            "SRAM saved",
        ],
        &rows,
    );
    println!("Paper: EMA -60.5% (DeiT) / -46.8% (GPT-2); SRAM -29.2% / -27.4%.");
}
