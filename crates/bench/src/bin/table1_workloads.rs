//! Table I — hardware workloads of the bit-slice GEMM accelerators as a
//! function of HO vector sparsity: measured counts from the functional
//! kernels vs the paper's closed-form expressions.

use panacea_bench::{emit, f3};
use panacea_bitslice::{SlicedActivation, SlicedWeight};
use panacea_core::aqs::aqs_gemm;
use panacea_core::sibia::{sibia_gemm, SkipSide};
use panacea_core::workload::table1;
use panacea_quant::dbs::DbsType;
use panacea_tensor::Matrix;

const K: usize = 64;
const R: u8 = 9;

/// Builds the 4×K×4 micro-tile with exact sparsity fractions.
fn operands(rho_w: f64, rho_x: f64) -> (Matrix<i32>, Matrix<i32>) {
    let kw = (rho_w * K as f64).round() as usize;
    let kx = (rho_x * K as f64).round() as usize;
    let w = Matrix::from_fn(4, K, |_, c| if c < kw { 5 } else { -45 });
    let x = Matrix::from_fn(
        K,
        4,
        |r, _| if r < kx { (i32::from(R) << 4) | 3 } else { 7 },
    );
    (w, x)
}

fn main() {
    let mut rows = Vec::new();
    for &(rho_w, rho_x) in &[
        (0.0, 0.0),
        (0.0, 0.5),
        (0.5, 0.0),
        (0.5, 0.5),
        (0.9, 0.9),
        (1.0, 1.0),
    ] {
        let (w, x) = operands(rho_w, rho_x);
        let sw = SlicedWeight::from_int(&w, 1).expect("7-bit weights");
        let sx = SlicedActivation::from_uint(&x, 1, DbsType::Type1).expect("8-bit acts");
        let (out, wl) = aqs_gemm(&sw, &sx, R);
        assert_eq!(out, w.gemm(&x).expect("shapes"), "AQS-GEMM must stay exact");

        // Sibia on the symmetric equivalent (same sparsity pattern).
        let x_sym = Matrix::from_fn(K, 4, |r, _| if r < kx_of(rho_x) { 3 } else { 60 });
        let sx_sym = SlicedWeight::from_int(&x_sym, 1).expect("7-bit acts");
        let (_, wl_sibia) = sibia_gemm(&sw, &sx_sym, SkipSide::Activation);

        rows.push(vec![
            format!("{rho_w:.1}"),
            format!("{rho_x:.1}"),
            format!("{}", wl.mul),
            f3(table1::panacea_mul(K as u64, rho_x, rho_w)),
            format!("{}", wl.comp_mul),
            format!("{}", wl.comp_add),
            format!("{}", wl.ema_slices),
            f3(table1::panacea_ema(K as u64, rho_x, rho_w)),
            format!("{}", wl_sibia.mul),
            f3(table1::sibia_mul(K as u64, rho_x, rho_w.min(rho_x))),
        ]);
    }
    emit(
        "Table I — measured workloads vs closed forms (4×K×4 tile, K = 64)",
        &[
            "rho_w",
            "rho_x",
            "Pan mul",
            "16K(2-rx)(2-rw)",
            "comp mul",
            "comp add",
            "Pan EMA",
            "4K(4-rw-rx)",
            "Sibia mul",
            "32K(2-max)",
        ],
        &rows,
    );
    println!(
        "Closed forms are expectations under independent compression; the\n\
         measured counts match exactly for the uniform patterns used here\n\
         whenever one side is dense, and stay within the overlap term otherwise."
    );
}

fn kx_of(rho_x: f64) -> usize {
    (rho_x * K as f64).round() as usize
}
