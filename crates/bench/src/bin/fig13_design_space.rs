//! Fig. 13 — Panacea throughput across the (ρ_w, ρ_x) design space for
//! both operator splits (4 DWO + 8 SWO vs 8 DWO + 4 SWO), with and
//! without DTP, for a small and a large GEMM, against SA-WS / SA-OS /
//! SIMD.

use panacea_bench::{emit, ratio, ComparisonSet};
use panacea_sim::arch::PanaceaConfig;
use panacea_sim::panacea::PanaceaSim;
use panacea_sim::simulate_model;
use panacea_sim::workload::LayerWork;

fn layer(m: usize, k: usize, n: usize, rho_w: f64, rho_x: f64) -> LayerWork {
    LayerWork {
        name: format!("gemm{m}x{k}x{n}"),
        m,
        k,
        n,
        count: 1,
        w_planes: 2,
        x_planes: 2,
        rho_w,
        rho_x,
    }
}

fn main() {
    let set = ComparisonSet::default_set();
    let clock = set.budget().clock_mhz;
    let sizes = [(512usize, 512usize, 512usize), (2048, 2048, 2048)];
    let splits = [(4usize, 8usize), (8, 4)];

    for (dwo, swo) in splits {
        for (m, k, n) in sizes {
            let mut rows = Vec::new();
            for rho in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0] {
                let l = vec![layer(m, k, n, rho, rho)];
                let mk = |dtp: bool| {
                    PanaceaSim::new(PanaceaConfig {
                        dwo_per_pea: dwo,
                        swo_per_pea: swo,
                        dtp,
                        ..PanaceaConfig::default()
                    })
                };
                let p_no = simulate_model(&mk(false), &l, clock);
                let p_dtp = simulate_model(&mk(true), &l, clock);
                let ws = simulate_model(&set.sa_ws, &l, clock);
                let os = simulate_model(&set.sa_os, &l, clock);
                let simd = simulate_model(&set.simd, &l, clock);
                rows.push(vec![
                    format!("{rho:.2}"),
                    format!("{:.2}", p_no.tops),
                    format!("{:.2}", p_dtp.tops),
                    format!("{:.2}", ws.tops),
                    format!("{:.2}", os.tops),
                    format!("{:.2}", simd.tops),
                    ratio(p_dtp.tops / simd.tops),
                ]);
            }
            emit(
                &format!(
                    "Fig. 13 — throughput (TOPS), {dwo} DWO + {swo} SWO per PEA, GEMM {m}x{k}x{n}"
                ),
                &[
                    "rho_w=rho_x",
                    "Pan (no DTP)",
                    "Pan (DTP)",
                    "SA-WS",
                    "SA-OS",
                    "SIMD",
                    "Pan/SIMD",
                ],
                &rows,
            );
        }
    }
    println!(
        "Paper shape: Panacea trails the dense designs at low sparsity, overtakes\n\
         them past mid sparsity (paper: up to 3.7x/3.35x/3.14x vs SA-WS/SA-OS/SIMD),\n\
         DTP lifts the high-sparsity plateau (paper: +1.11x), and the 8-DWO split\n\
         narrows the dense gap but saturates earlier without DTP."
    );
}
