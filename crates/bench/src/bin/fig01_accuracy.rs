//! Fig. 1 — the paper's opening claim: recent works use symmetric
//! quantization for weights but *asymmetric* for activations because
//! symmetric activations lose accuracy on large-scale DNNs. Reproduced as
//! sym-vs-asym quality across the full benchmark suite.

use panacea_bench::emit;
use panacea_models::proxy::{accuracy_loss_pp, aggregate_sqnr_db, perplexity_proxy};
use panacea_models::zoo::Benchmark;
use panacea_models::{profile_model, ProfileOptions};

fn main() {
    let mut rows = Vec::new();
    for b in Benchmark::all() {
        let model = b.spec();
        let profiles = profile_model(&model, &ProfileOptions::default());
        let agg = |f: &dyn Fn(&panacea_models::LayerProfile) -> f64| {
            aggregate_sqnr_db(
                &profiles
                    .iter()
                    .map(|p| (f(p), p.spec.total_macs()))
                    .collect::<Vec<_>>(),
            )
        };
        let sym = agg(&|p| p.sqnr_sym_db);
        let asym = agg(&|p| p.sqnr_asym_db);
        let quality = |sqnr: f64| {
            if model.quality_is_ppl {
                format!("ppl {:.1}", perplexity_proxy(model.fp16_quality, sqnr))
            } else {
                format!("{:.1}%", model.fp16_quality - accuracy_loss_pp(sqnr))
            }
        };
        rows.push(vec![
            model.name.clone(),
            if model.quality_is_ppl {
                format!("ppl {:.1}", model.fp16_quality)
            } else {
                format!("{:.1}%", model.fp16_quality)
            },
            quality(sym),
            quality(asym),
            format!("{:+.1} dB", asym - sym),
        ]);
    }
    emit(
        "Fig. 1 — symmetric vs asymmetric activation quantization (8-bit W/A)",
        &[
            "model",
            "FP16",
            "symmetric acts",
            "asymmetric acts",
            "SQNR gain",
        ],
        &rows,
    );
    println!(
        "Paper shape: asymmetric activation quantization preserves quality on\n\
         every large-scale model while symmetric quantization degrades it."
    );
}
