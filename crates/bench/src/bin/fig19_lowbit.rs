//! Fig. 19 — low-bit weights on OPT-2.7B: 7-bit (n = 1) vs OPTQ 4-bit
//! (n = 0) for Sibia and Panacea — energy, latency and perplexity.
//!
//! OPTQ runs for real on sampled layer tiles (Hessian from calibration
//! activations) to quantify the 4-bit quality, and the simulators run
//! with single-plane weights (DTP engages aggressively — the paper's
//! "56% of Sibia's energy" effect).

use panacea_bench::{emit, f3, ratio, to_layer_work, ComparisonSet, EngineKind};
use panacea_models::proxy::{aggregate_sqnr_db, perplexity_proxy};
use panacea_models::zoo::Benchmark;
use panacea_models::{profile_model, ProfileOptions};
use panacea_quant::optq::{layer_output_error, optq_quantize, rtn_quantize, OptqConfig};
use panacea_sim::arch::PanaceaConfig;
use panacea_sim::simulate_model;
use panacea_tensor::dist::DistributionKind;

fn main() {
    // Deployment choice for the low-bit study: weights are 4× smaller, so
    // a larger WMEM share lets DTP hold two TM-tiles at once (the paper's
    // "DTP is frequently enabled due to the 4-bit weights").
    let set = ComparisonSet::new(PanaceaConfig {
        wmem_fraction: 0.85,
        ..PanaceaConfig::default()
    });
    let clock = set.budget().clock_mhz;
    let model = Benchmark::Opt2_7b.spec();

    // --- Real OPTQ on a representative sampled layer (scaled-down K for
    // the O(K³) Hessian inverse; quality trend carries).
    let mut rng = panacea_tensor::seeded_rng(19);
    let w = DistributionKind::OutlierChannels {
        core_std: 0.02,
        outlier_scale: 12.0,
        outlier_frac: 0.01,
    }
    .sample_matrix(64, 128, &mut rng);
    let x = DistributionKind::OutlierChannels {
        core_std: 0.3,
        outlier_scale: 30.0,
        outlier_frac: 0.02,
    }
    .sample_matrix(128, 256, &mut rng);
    let cfg4 = OptqConfig {
        bits: 4,
        group_size: Some(64),
        damping: 0.01,
    };
    let optq = optq_quantize(&w, &x, cfg4).expect("OPTQ");
    let rtn = rtn_quantize(&w, cfg4).expect("RTN");
    let e_optq = layer_output_error(&w, &optq.dequantize(), &x);
    let e_rtn = layer_output_error(&w, &rtn.dequantize(), &x);
    let sig: f64 = w
        .gemm_f32(&x)
        .unwrap()
        .iter()
        .map(|&v| f64::from(v).powi(2))
        .sum();
    let optq_sqnr = 10.0 * (sig / e_optq).log10();
    let rtn_sqnr = 10.0 * (sig / e_rtn).log10();
    emit(
        "Fig. 19 (prelude) — OPTQ vs RTN at 4-bit weights (sampled OPT layer)",
        &["method", "layer-output SQNR (dB)"],
        &[
            vec!["RTN 4-bit".into(), f3(rtn_sqnr)],
            vec!["OPTQ 4-bit (64-ch groups)".into(), f3(optq_sqnr)],
        ],
    );

    // --- System-level comparison at 7-bit and 4-bit weights.
    let mut rows = Vec::new();
    for (label, w_bits, ppl_penalty_db) in [
        ("7-bit (n=1)", 7u8, 0.0),
        ("4-bit OPTQ (n=0)", 4, rtn_sqnr - optq_sqnr),
    ] {
        let mut spec = model.clone();
        for l in &mut spec.layers {
            l.weight_bits = w_bits;
        }
        let profiles = profile_model(&spec, &ProfileOptions::default());
        let pan: Vec<_> = profiles
            .iter()
            .map(|p| to_layer_work(p, EngineKind::Panacea))
            .collect();
        let sib: Vec<_> = profiles
            .iter()
            .map(|p| to_layer_work(p, EngineKind::Sibia))
            .collect();
        let p = simulate_model(&set.panacea, &pan, clock);
        let s = simulate_model(&set.sibia, &sib, clock);
        // Quality: OPTQ holds PPL close to FP16 even at 4 bits; the
        // aggregate SQNR reflects the weight-width change through the
        // profiles, with the OPTQ-vs-RTN delta credited back.
        let sqnr = aggregate_sqnr_db(
            &profiles
                .iter()
                .map(|pr| (pr.sqnr_dbs_db, pr.spec.total_macs()))
                .collect::<Vec<_>>(),
        ) + if w_bits == 4 {
            ppl_penalty_db.max(0.0)
        } else {
            0.0
        };
        let ppl = perplexity_proxy(model.fp16_quality, sqnr);
        rows.push(vec![
            label.to_string(),
            "Sibia".to_string(),
            f3(s.energy.total_pj() / 1e9),
            f3(s.seconds * 1e3),
            format!("{ppl:.1}"),
            ratio(1.0),
        ]);
        rows.push(vec![
            label.to_string(),
            "Panacea".to_string(),
            f3(p.energy.total_pj() / 1e9),
            f3(p.seconds * 1e3),
            format!("{ppl:.1}"),
            ratio(s.seconds / p.seconds),
        ]);
    }
    emit(
        "Fig. 19 — OPT-2.7B with 7-bit vs 4-bit weights",
        &[
            "weights",
            "design",
            "energy mJ",
            "latency ms",
            "perplexity",
            "latency gain",
        ],
        &rows,
    );
    println!(
        "Paper shape: with 4-bit weights (no HO weight slices) DTP engages widely;\n\
         Panacea spends ~56% of Sibia's energy and is 1.9x/3.3x faster at\n\
         7-bit/4-bit while PPL stays acceptable thanks to OPTQ."
    );
}
