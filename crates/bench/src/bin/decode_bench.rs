//! Continuous-batching decode throughput, machine-readable.
//!
//! Measures aggregate decode tokens/s for N concurrent sessions under
//! two executions of the exact same work:
//!
//! * **solo** — serial per-session stepping ([`decode_step`]), the
//!   pre-batching behavior: every single-token step runs the block
//!   stack at GEMM width 1, padded up to the PE vector width;
//! * **batched** — one fused pass per round ([`decode_step_batch`]):
//!   all N sessions' new-token columns share one QKV/proj/fc1/fc2 GEMM
//!   pass per block, attention per session.
//!
//! Both paths are bit-identical per session (asserted here on the first
//! round); the difference is purely GEMM width and padding waste. The
//! results are written to `BENCH_decode.json` so the repo's decode perf
//! trajectory is tracked across PRs, and the 8-session speedup is gated
//! so CI catches a regression that serializes decode again.
//!
//! A telemetry A/B section re-runs the fused workload with block
//! sub-layer stage timing toggled off and on
//! ([`set_stage_timing_enabled`]) and gates the instrumentation cost at
//! ≤3% of decode tokens/s, so observability never quietly taxes the
//! serving hot path.
//!
//! Run with: `cargo run --release -p panacea-bench --bin decode_bench`

use std::time::Instant;

use panacea_block::{
    decode_step, decode_step_batch, set_stage_timing_enabled, KvCache, QuantizedBlock,
};
use panacea_models::engine::TransformerConfig;
use panacea_models::zoo::Benchmark;
use panacea_serve::testutil::block_stack;
use panacea_tensor::Matrix;
use serde_json::{json, Value};

const D_MODEL: usize = 32;
const N_BLOCKS: usize = 2;
const PREFIX: usize = 32;
const ROUNDS: usize = 48;
const SESSION_COUNTS: [usize; 4] = [1, 4, 8, 16];
/// The regression gate: fused 8-session decode must beat serial
/// stepping by at least this factor (the MAC ratio alone is ~4×).
const GATED_SESSIONS: usize = 8;
const GATED_SPEEDUP: f64 = 2.0;
/// Telemetry gate: stage timing on must cost at most this fraction of
/// fused decode throughput relative to timing off. Best-of-N on each
/// arm so scheduler noise doesn't fail the gate spuriously.
const OVERHEAD_TRIALS: usize = 5;
const MAX_TELEMETRY_OVERHEAD: f64 = 0.03;

fn token(salt: usize) -> Matrix<f32> {
    Matrix::from_fn(D_MODEL, 1, |r, _| {
        (((r * 29 + salt * 11 + 3) % 89) as f32 - 44.0) / 22.0
    })
}

fn prefilled(blocks: &[QuantizedBlock], sessions: usize) -> Vec<KvCache> {
    (0..sessions)
        .map(|s| {
            let prefix = Matrix::from_fn(D_MODEL, PREFIX, |r, c| {
                (((r * 29 + c * 11 + s * 7) % 89) as f32 - 44.0) / 22.0
            });
            let mut kv = KvCache::for_blocks(blocks);
            decode_step(blocks, &prefix, &mut kv);
            kv
        })
        .collect()
}

/// One fused-decode throughput trial at `sessions` concurrency:
/// prefill, then `ROUNDS` batched steps, returning tokens/s.
fn fused_trial(blocks: &[QuantizedBlock], sessions: usize) -> f64 {
    let tokens: Vec<Matrix<f32>> = (0..sessions).map(token).collect();
    let refs: Vec<&Matrix<f32>> = tokens.iter().collect();
    let stacked = Matrix::hstack(&refs).expect("same width");
    let segments = vec![1usize; sessions];
    let mut fused = prefilled(blocks, sessions);
    let started = Instant::now();
    for _ in 0..ROUNDS {
        let mut kv_refs: Vec<&mut KvCache> = fused.iter_mut().collect();
        decode_step_batch(blocks, &stacked, &segments, &mut kv_refs);
    }
    (sessions * ROUNDS) as f64 / started.elapsed().as_secs_f64()
}

fn main() {
    let cfg = TransformerConfig {
        d_model: D_MODEL,
        n_heads: 4,
        d_ff: 64,
        n_layers: N_BLOCKS,
    };
    let blocks = block_stack(Benchmark::Gpt2, cfg, 17);
    println!(
        "continuous-batching decode bench ({N_BLOCKS} blocks, d_model={D_MODEL}, \
         prefix={PREFIX}, {ROUNDS} tokens/session)"
    );
    println!(
        "{:>9}  {:>14}  {:>16}  {:>8}",
        "sessions", "solo tok/s", "batched tok/s", "speedup"
    );

    let mut rows: Vec<Value> = Vec::new();
    let mut gated_speedup = 0.0f64;
    for &sessions in &SESSION_COUNTS {
        let tokens: Vec<Matrix<f32>> = (0..sessions).map(token).collect();
        let refs: Vec<&Matrix<f32>> = tokens.iter().collect();
        let stacked = Matrix::hstack(&refs).expect("same width");
        let segments = vec![1usize; sessions];

        // Bit-exactness spot check: the first fused round must equal
        // the first solo round, per session.
        {
            let mut solo = prefilled(&blocks, sessions);
            let mut fused = solo.clone();
            let solo_outs: Vec<Matrix<f32>> = tokens
                .iter()
                .zip(&mut solo)
                .map(|(t, kv)| decode_step(&blocks, t, kv).0)
                .collect();
            let mut kv_refs: Vec<&mut KvCache> = fused.iter_mut().collect();
            let (out, _) = decode_step_batch(&blocks, &stacked, &segments, &mut kv_refs);
            for (s, solo_out) in solo_outs.iter().enumerate() {
                for r in 0..D_MODEL {
                    assert_eq!(
                        out[(r, s)].to_bits(),
                        solo_out[(r, 0)].to_bits(),
                        "fused decode diverged from solo at session {s}, row {r}"
                    );
                }
            }
        }

        // Solo: serial per-session stepping, one GEMM pass per step.
        let mut solo = prefilled(&blocks, sessions);
        let started = Instant::now();
        for _ in 0..ROUNDS {
            for (t, kv) in tokens.iter().zip(&mut solo) {
                decode_step(&blocks, t, kv);
            }
        }
        let solo_tps = (sessions * ROUNDS) as f64 / started.elapsed().as_secs_f64();

        // Batched: one fused pass per round across all sessions.
        let mut fused = prefilled(&blocks, sessions);
        let started = Instant::now();
        for _ in 0..ROUNDS {
            let mut kv_refs: Vec<&mut KvCache> = fused.iter_mut().collect();
            decode_step_batch(&blocks, &stacked, &segments, &mut kv_refs);
        }
        let batched_tps = (sessions * ROUNDS) as f64 / started.elapsed().as_secs_f64();

        let speedup = batched_tps / solo_tps;
        if sessions == GATED_SESSIONS {
            gated_speedup = speedup;
        }
        println!("{sessions:>9}  {solo_tps:>14.1}  {batched_tps:>16.1}  {speedup:>7.2}x");
        rows.push(json!({
            "sessions": sessions,
            "solo_tokens_per_s": solo_tps,
            "batched_tokens_per_s": batched_tps,
            "speedup": speedup,
        }));
    }

    // Telemetry overhead A/B: the same fused-decode workload with block
    // sub-layer stage timing off vs on. Arms are interleaved per trial
    // so clock/thermal drift taxes both equally, and each arm takes its
    // best of OVERHEAD_TRIALS runs — best-of is the right statistic for
    // an overhead bound because noise only ever slows a trial down.
    fused_trial(&blocks, GATED_SESSIONS); // warmup
    let mut disabled_tps = 0.0f64;
    let mut enabled_tps = 0.0f64;
    for _ in 0..OVERHEAD_TRIALS {
        set_stage_timing_enabled(false);
        disabled_tps = disabled_tps.max(fused_trial(&blocks, GATED_SESSIONS));
        set_stage_timing_enabled(true);
        enabled_tps = enabled_tps.max(fused_trial(&blocks, GATED_SESSIONS));
    }
    let overhead = 1.0 - enabled_tps / disabled_tps;
    println!(
        "\ntelemetry A/B @ {GATED_SESSIONS} sessions: timing off {disabled_tps:.1} tok/s, \
         on {enabled_tps:.1} tok/s ({:+.2}% overhead)",
        overhead * 100.0
    );

    let report = json!({
        "bench": "decode_continuous_batching",
        "d_model": D_MODEL,
        "n_blocks": N_BLOCKS,
        "n_heads": 4,
        "d_ff": 64,
        "prefix_tokens": PREFIX,
        "tokens_per_session": ROUNDS,
        "results": Value::Array(rows),
        "telemetry_overhead": json!({
            "sessions": GATED_SESSIONS,
            "timing_disabled_tokens_per_s": disabled_tps,
            "timing_enabled_tokens_per_s": enabled_tps,
            "overhead_frac": overhead,
        }),
    });
    let encoded = serde_json::to_string(&report).expect("shim serializer never fails");
    std::fs::write("BENCH_decode.json", &encoded).expect("write BENCH_decode.json");
    println!("\nwrote BENCH_decode.json");

    assert!(
        gated_speedup >= GATED_SPEEDUP,
        "continuous batching regressed: {gated_speedup:.2}x at {GATED_SESSIONS} sessions \
         (need >= {GATED_SPEEDUP}x)"
    );
    println!("{GATED_SESSIONS}-session fused speedup {gated_speedup:.2}x >= {GATED_SPEEDUP}x ✓");

    assert!(
        enabled_tps >= (1.0 - MAX_TELEMETRY_OVERHEAD) * disabled_tps,
        "stage timing costs {:.2}% of fused decode throughput \
         (gate: <= {:.0}%)",
        overhead * 100.0,
        MAX_TELEMETRY_OVERHEAD * 100.0
    );
    println!(
        "telemetry overhead {:+.2}% <= {:.0}% ✓",
        overhead * 100.0,
        MAX_TELEMETRY_OVERHEAD * 100.0
    );
}
