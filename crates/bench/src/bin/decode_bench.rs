//! Continuous-batching decode throughput, machine-readable.
//!
//! Measures aggregate decode tokens/s for N concurrent sessions under
//! two executions of the exact same work:
//!
//! * **solo** — serial per-session stepping ([`decode_step`]), the
//!   pre-batching behavior: every single-token step runs the block
//!   stack at GEMM width 1, padded up to the PE vector width;
//! * **batched** — one fused pass per round ([`decode_step_batch`]):
//!   all N sessions' new-token columns share one QKV/proj/fc1/fc2 GEMM
//!   pass per block, attention per session.
//!
//! Both paths are bit-identical per session (asserted here on the first
//! round); the difference is purely GEMM width and padding waste. The
//! results are written to `BENCH_decode.json` so the repo's decode perf
//! trajectory is tracked across PRs, and the 8-session speedup is gated
//! so CI catches a regression that serializes decode again.
//!
//! A telemetry A/B section re-runs the fused workload with block
//! sub-layer stage timing toggled off and on
//! ([`set_stage_timing_enabled`]) and gates the instrumentation cost at
//! ≤3% of decode tokens/s, so observability never quietly taxes the
//! serving hot path.
//!
//! A faultline A/B section drives serve-layer decode (the session
//! manager's batching worker, whose fused pass hosts the
//! `serve.decode.fused_pass` chaos hook) with no plan armed vs an armed
//! empty plan, and gates the difference at ≤1% of tokens/s. The armed
//! no-op arm upper-bounds the hook's cost — disarmed sites are a single
//! relaxed atomic load, strictly cheaper than the armed path being
//! measured — so fault injection provably never taxes production decode.
//!
//! Run with: `cargo run --release -p panacea-bench --bin decode_bench`

use std::sync::Arc;
use std::time::Instant;

use panacea_block::{
    decode_step, decode_step_batch, set_stage_timing_enabled, KvCache, QuantizedBlock,
};
use panacea_faultline::{FaultPlan, Scenario};
use panacea_models::engine::TransformerConfig;
use panacea_models::zoo::Benchmark;
use panacea_serve::testutil::{block_model, block_stack, hidden};
use panacea_serve::{PreparedModel, SessionConfig, SessionManager};
use panacea_tensor::Matrix;
use serde_json::{json, Value};

const D_MODEL: usize = 32;
const N_BLOCKS: usize = 2;
const PREFIX: usize = 32;
const ROUNDS: usize = 48;
const SESSION_COUNTS: [usize; 4] = [1, 4, 8, 16];
/// The regression gate: fused 8-session decode must beat serial
/// stepping by at least this factor (the MAC ratio alone is ~4×).
const GATED_SESSIONS: usize = 8;
const GATED_SPEEDUP: f64 = 2.0;
/// Telemetry gate: stage timing on must cost at most this fraction of
/// fused decode throughput relative to timing off. Best-of-N on each
/// arm so scheduler noise doesn't fail the gate spuriously.
const OVERHEAD_TRIALS: usize = 5;
const MAX_TELEMETRY_OVERHEAD: f64 = 0.03;
/// Faultline gate: fused decode through the session manager's batching
/// worker with an armed (but empty) fault plan must stay within this
/// fraction of the no-plan baseline.
const MAX_FAULTLINE_OVERHEAD: f64 = 0.01;
const FAULTLINE_ROUNDS: usize = 64;

fn token(salt: usize) -> Matrix<f32> {
    Matrix::from_fn(D_MODEL, 1, |r, _| {
        (((r * 29 + salt * 11 + 3) % 89) as f32 - 44.0) / 22.0
    })
}

fn prefilled(blocks: &[QuantizedBlock], sessions: usize) -> Vec<KvCache> {
    (0..sessions)
        .map(|s| {
            let prefix = Matrix::from_fn(D_MODEL, PREFIX, |r, c| {
                (((r * 29 + c * 11 + s * 7) % 89) as f32 - 44.0) / 22.0
            });
            let mut kv = KvCache::for_blocks(blocks);
            decode_step(blocks, &prefix, &mut kv);
            kv
        })
        .collect()
}

/// One fused-decode throughput trial at `sessions` concurrency:
/// prefill, then `ROUNDS` batched steps, returning tokens/s.
fn fused_trial(blocks: &[QuantizedBlock], sessions: usize) -> f64 {
    let tokens: Vec<Matrix<f32>> = (0..sessions).map(token).collect();
    let refs: Vec<&Matrix<f32>> = tokens.iter().collect();
    let stacked = Matrix::hstack(&refs).expect("same width");
    let segments = vec![1usize; sessions];
    let mut fused = prefilled(blocks, sessions);
    let started = Instant::now();
    for _ in 0..ROUNDS {
        let mut kv_refs: Vec<&mut KvCache> = fused.iter_mut().collect();
        decode_step_batch(blocks, &stacked, &segments, &mut kv_refs);
    }
    (sessions * ROUNDS) as f64 / started.elapsed().as_secs_f64()
}

/// One serve-layer decode trial: a fresh session stepping
/// [`FAULTLINE_ROUNDS`] single tokens through the session manager's
/// batching worker, so every step crosses the `serve.decode.fused_pass`
/// fault site exactly where production decode does. Returns tokens/s.
fn site_trial(mgr: &SessionManager, model: &Arc<PreparedModel>) -> f64 {
    let d_model = model.in_features();
    let session = mgr.open(Arc::clone(model)).expect("session open");
    let started = Instant::now();
    for i in 0..FAULTLINE_ROUNDS {
        mgr.step(session, &hidden(d_model, 1, i)).expect("step");
    }
    let tps = FAULTLINE_ROUNDS as f64 / started.elapsed().as_secs_f64();
    mgr.close(session).expect("session close");
    tps
}

fn main() {
    let cfg = TransformerConfig {
        d_model: D_MODEL,
        n_heads: 4,
        d_ff: 64,
        n_layers: N_BLOCKS,
    };
    let blocks = block_stack(Benchmark::Gpt2, cfg, 17);
    println!(
        "continuous-batching decode bench ({N_BLOCKS} blocks, d_model={D_MODEL}, \
         prefix={PREFIX}, {ROUNDS} tokens/session)"
    );
    println!(
        "{:>9}  {:>14}  {:>16}  {:>8}",
        "sessions", "solo tok/s", "batched tok/s", "speedup"
    );

    let mut rows: Vec<Value> = Vec::new();
    let mut gated_speedup = 0.0f64;
    for &sessions in &SESSION_COUNTS {
        let tokens: Vec<Matrix<f32>> = (0..sessions).map(token).collect();
        let refs: Vec<&Matrix<f32>> = tokens.iter().collect();
        let stacked = Matrix::hstack(&refs).expect("same width");
        let segments = vec![1usize; sessions];

        // Bit-exactness spot check: the first fused round must equal
        // the first solo round, per session.
        {
            let mut solo = prefilled(&blocks, sessions);
            let mut fused = solo.clone();
            let solo_outs: Vec<Matrix<f32>> = tokens
                .iter()
                .zip(&mut solo)
                .map(|(t, kv)| decode_step(&blocks, t, kv).0)
                .collect();
            let mut kv_refs: Vec<&mut KvCache> = fused.iter_mut().collect();
            let (out, _) = decode_step_batch(&blocks, &stacked, &segments, &mut kv_refs);
            for (s, solo_out) in solo_outs.iter().enumerate() {
                for r in 0..D_MODEL {
                    assert_eq!(
                        out[(r, s)].to_bits(),
                        solo_out[(r, 0)].to_bits(),
                        "fused decode diverged from solo at session {s}, row {r}"
                    );
                }
            }
        }

        // Solo: serial per-session stepping, one GEMM pass per step.
        let mut solo = prefilled(&blocks, sessions);
        let started = Instant::now();
        for _ in 0..ROUNDS {
            for (t, kv) in tokens.iter().zip(&mut solo) {
                decode_step(&blocks, t, kv);
            }
        }
        let solo_tps = (sessions * ROUNDS) as f64 / started.elapsed().as_secs_f64();

        // Batched: one fused pass per round across all sessions.
        let mut fused = prefilled(&blocks, sessions);
        let started = Instant::now();
        for _ in 0..ROUNDS {
            let mut kv_refs: Vec<&mut KvCache> = fused.iter_mut().collect();
            decode_step_batch(&blocks, &stacked, &segments, &mut kv_refs);
        }
        let batched_tps = (sessions * ROUNDS) as f64 / started.elapsed().as_secs_f64();

        let speedup = batched_tps / solo_tps;
        if sessions == GATED_SESSIONS {
            gated_speedup = speedup;
        }
        println!("{sessions:>9}  {solo_tps:>14.1}  {batched_tps:>16.1}  {speedup:>7.2}x");
        rows.push(json!({
            "sessions": sessions,
            "solo_tokens_per_s": solo_tps,
            "batched_tokens_per_s": batched_tps,
            "speedup": speedup,
        }));
    }

    // Telemetry overhead A/B: the same fused-decode workload with block
    // sub-layer stage timing off vs on. Arms are interleaved per trial
    // so clock/thermal drift taxes both equally, and each arm takes its
    // best of OVERHEAD_TRIALS runs — best-of is the right statistic for
    // an overhead bound because noise only ever slows a trial down.
    fused_trial(&blocks, GATED_SESSIONS); // warmup
    let mut disabled_tps = 0.0f64;
    let mut enabled_tps = 0.0f64;
    for _ in 0..OVERHEAD_TRIALS {
        set_stage_timing_enabled(false);
        disabled_tps = disabled_tps.max(fused_trial(&blocks, GATED_SESSIONS));
        set_stage_timing_enabled(true);
        enabled_tps = enabled_tps.max(fused_trial(&blocks, GATED_SESSIONS));
    }
    let overhead = 1.0 - enabled_tps / disabled_tps;
    println!(
        "\ntelemetry A/B @ {GATED_SESSIONS} sessions: timing off {disabled_tps:.1} tok/s, \
         on {enabled_tps:.1} tok/s ({:+.2}% overhead)",
        overhead * 100.0
    );

    // Faultline overhead A/B: serve-layer decode with no plan armed vs
    // an armed empty plan, interleaved best-of like the telemetry gate.
    // Arming serializes on the global plan lock, so the armed arm holds
    // one guard across its trials and the disarmed arm runs outside it.
    let (fl_model, _) = block_model("faultline-ab", 19);
    let fl_model = Arc::new(fl_model);
    let mgr = SessionManager::new(SessionConfig::default());
    // warmup
    site_trial(&mgr, &fl_model);
    // The true effect is sub-noise (one uncontended lock per pass), so a
    // pass that lands over the limit on a shared box is remeasured a
    // bounded number of times — only a cost the machine reproduces every
    // time fails the gate (same policy as the gateway exporter A/B).
    let mut attempts = 0usize;
    let (mut disarmed_tps, mut armed_tps, mut faultline_overhead);
    loop {
        attempts += 1;
        (disarmed_tps, armed_tps) = (0.0f64, 0.0f64);
        for _ in 0..OVERHEAD_TRIALS {
            disarmed_tps = disarmed_tps.max(site_trial(&mgr, &fl_model));
            let guard = FaultPlan::compile(0, &Scenario::new()).arm();
            armed_tps = armed_tps.max(site_trial(&mgr, &fl_model));
            drop(guard);
        }
        faultline_overhead = 1.0 - armed_tps / disarmed_tps;
        if faultline_overhead <= MAX_FAULTLINE_OVERHEAD || attempts == 3 {
            break;
        }
        println!(
            "faultline A/B: attempt {attempts} overhead {:.3} over limit — remeasuring",
            faultline_overhead
        );
    }
    println!(
        "faultline A/B (serve-layer decode): disarmed {disarmed_tps:.1} tok/s, \
         armed empty plan {armed_tps:.1} tok/s ({:+.2}% overhead)",
        faultline_overhead * 100.0
    );

    let report = json!({
        "bench": "decode_continuous_batching",
        "d_model": D_MODEL,
        "n_blocks": N_BLOCKS,
        "n_heads": 4,
        "d_ff": 64,
        "prefix_tokens": PREFIX,
        "tokens_per_session": ROUNDS,
        "results": Value::Array(rows),
        "telemetry_overhead": json!({
            "sessions": GATED_SESSIONS,
            "timing_disabled_tokens_per_s": disabled_tps,
            "timing_enabled_tokens_per_s": enabled_tps,
            "overhead_frac": overhead,
        }),
        "faultline_overhead": json!({
            "rounds": FAULTLINE_ROUNDS,
            "disarmed_tokens_per_s": disarmed_tps,
            "armed_empty_tokens_per_s": armed_tps,
            "overhead_frac": faultline_overhead,
        }),
    });
    let encoded = serde_json::to_string(&report).expect("shim serializer never fails");
    std::fs::write("BENCH_decode.json", &encoded).expect("write BENCH_decode.json");
    println!("\nwrote BENCH_decode.json");

    assert!(
        gated_speedup >= GATED_SPEEDUP,
        "continuous batching regressed: {gated_speedup:.2}x at {GATED_SESSIONS} sessions \
         (need >= {GATED_SPEEDUP}x)"
    );
    println!("{GATED_SESSIONS}-session fused speedup {gated_speedup:.2}x >= {GATED_SPEEDUP}x ✓");

    assert!(
        enabled_tps >= (1.0 - MAX_TELEMETRY_OVERHEAD) * disabled_tps,
        "stage timing costs {:.2}% of fused decode throughput \
         (gate: <= {:.0}%)",
        overhead * 100.0,
        MAX_TELEMETRY_OVERHEAD * 100.0
    );
    println!(
        "telemetry overhead {:+.2}% <= {:.0}% ✓",
        overhead * 100.0,
        MAX_TELEMETRY_OVERHEAD * 100.0
    );

    assert!(
        armed_tps >= (1.0 - MAX_FAULTLINE_OVERHEAD) * disarmed_tps,
        "fault sites cost {:.2}% of serve-layer decode throughput with an \
         armed empty plan (gate: <= {:.0}%; disarmed sites are strictly cheaper)",
        faultline_overhead * 100.0,
        MAX_FAULTLINE_OVERHEAD * 100.0
    );
    println!(
        "faultline overhead {:+.2}% <= {:.0}% ✓",
        faultline_overhead * 100.0,
        MAX_FAULTLINE_OVERHEAD * 100.0
    );
}
