//! Fig. 16 — energy efficiency (TOPS/W), throughput and accuracy loss of
//! Panacea vs SA-WS / SA-OS / SIMD / Sibia on DeiT-base, BERT-base,
//! GPT-2 and ResNet-18.

use panacea_bench::{emit, f3, ratio, to_layer_work, ComparisonSet, EngineKind};
use panacea_models::proxy::{accuracy_loss_pp, aggregate_sqnr_db, perplexity_proxy};
use panacea_models::zoo::Benchmark;
use panacea_models::{profile_model, ProfileOptions};
use panacea_sim::{simulate_model, Accelerator};

fn main() {
    let set = ComparisonSet::default_set();
    let clock = set.budget().clock_mhz;
    let mut rows = Vec::new();

    for b in [
        Benchmark::DeitBase,
        Benchmark::BertBase,
        Benchmark::Gpt2,
        Benchmark::Resnet18,
    ] {
        let model = b.spec();
        let profiles = profile_model(&model, &ProfileOptions::default());
        let pan: Vec<_> = profiles
            .iter()
            .map(|p| to_layer_work(p, EngineKind::Panacea))
            .collect();
        let sib: Vec<_> = profiles
            .iter()
            .map(|p| to_layer_work(p, EngineKind::Sibia))
            .collect();
        let dense: Vec<_> = profiles
            .iter()
            .map(|p| to_layer_work(p, EngineKind::Dense))
            .collect();

        // Quality: dense 8-bit designs use plain asymmetric activations,
        // Panacea additionally pays the small DBS truncation, Sibia is
        // stuck with 7-bit symmetric quantization.
        let asym: Vec<(f64, u64)> = profiles
            .iter()
            .map(|p| (p.sqnr_asym_db, p.spec.total_macs()))
            .collect();
        let dbs: Vec<(f64, u64)> = profiles
            .iter()
            .map(|p| (p.sqnr_dbs_db, p.spec.total_macs()))
            .collect();
        let sym: Vec<(f64, u64)> = profiles
            .iter()
            .map(|p| (p.sqnr_sym_db, p.spec.total_macs()))
            .collect();
        let quality = |sqnr: f64| -> String {
            if model.quality_is_ppl {
                format!("ppl {:.1}", perplexity_proxy(model.fp16_quality, sqnr))
            } else {
                format!("-{:.2}%p", accuracy_loss_pp(sqnr))
            }
        };

        let p_perf = simulate_model(&set.panacea, &pan, clock);
        for (acc, layers, q) in [
            (
                &set.sa_ws as &dyn Accelerator,
                &dense,
                quality(aggregate_sqnr_db(&asym)),
            ),
            (&set.sa_os, &dense, quality(aggregate_sqnr_db(&asym))),
            (&set.simd, &dense, quality(aggregate_sqnr_db(&asym))),
            (&set.sibia, &sib, quality(aggregate_sqnr_db(&sym))),
            (&set.panacea, &pan, quality(aggregate_sqnr_db(&dbs))),
        ] {
            let perf = simulate_model(acc, layers, clock);
            rows.push(vec![
                model.name.clone(),
                acc.name().to_string(),
                f3(perf.tops_per_w),
                format!("{:.2}", perf.tops),
                q,
                ratio(p_perf.tops_per_w / perf.tops_per_w),
                ratio(p_perf.tops / perf.tops),
            ]);
        }
    }
    emit(
        "Fig. 16 — efficiency, throughput and quality loss (iso-resources)",
        &[
            "model",
            "design",
            "TOPS/W",
            "TOPS",
            "quality",
            "Pan eff. gain",
            "Pan thpt gain",
        ],
        &rows,
    );
    println!(
        "Paper shape (GPT-2): Panacea 3.82x/3.07x/3.81x/2.03x more efficient than\n\
         SA-WS/SA-OS/SIMD/Sibia; 1.34x throughput and better accuracy than Sibia\n\
         everywhere thanks to asymmetric quantization."
    );
}
