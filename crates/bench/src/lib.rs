//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §5 for the index) and prints it both as an
//! aligned text table and as JSON (behind `--json`).

use panacea_models::profile::LayerProfile;
use panacea_sim::arch::{HardwareBudget, PanaceaConfig};
use panacea_sim::baselines::{SibiaSim, SimdSim, SystolicFlow, SystolicSim};
use panacea_sim::panacea::PanaceaSim;
use panacea_sim::workload::LayerWork;
use panacea_sim::Accelerator;

/// Which accelerator semantics to use when converting a measured profile
/// into a [`LayerWork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Panacea: all-`r` activation vector sparsity (optionally ZPM/DBS).
    Panacea,
    /// Panacea restricted to zero-slice skipping (Fig. 18(b) ablation).
    PanaceaZeroSkipOnly,
    /// Sibia: symmetric activations, its own zero-vector sparsity.
    Sibia,
    /// Dense designs: sparsity ignored.
    Dense,
}

/// Converts a measured layer profile into the simulator descriptor under
/// the given engine's semantics.
pub fn to_layer_work(p: &LayerProfile, engine: EngineKind) -> LayerWork {
    let (rho_w, rho_x, x_planes) = match engine {
        EngineKind::Panacea => (p.rho_w, p.rho_x, p.spec.act_lo_slices + 1),
        EngineKind::PanaceaZeroSkipOnly => (p.rho_w, p.rho_x_zero_only, p.spec.act_lo_slices + 1),
        // Sibia's symmetric (3k+4)-bit activations use the same number of
        // slices as its weights' format family.
        EngineKind::Sibia => (p.rho_w, p.rho_x_sibia, p.spec.act_lo_slices + 1),
        EngineKind::Dense => (0.0, 0.0, p.spec.act_lo_slices + 1),
    };
    LayerWork {
        name: p.spec.name.clone(),
        m: p.spec.m,
        k: p.spec.k,
        n: p.spec.n,
        count: p.spec.count,
        w_planes: usize::from((p.spec.weight_bits - 4) / 3) + 1,
        x_planes,
        rho_w,
        rho_x,
    }
}

/// The full iso-resource comparison set: SA-WS, SA-OS, SIMD, Sibia and a
/// Panacea instance with the given configuration.
pub struct ComparisonSet {
    /// Panacea under `cfg`.
    pub panacea: PanaceaSim,
    /// Sibia under the same budget.
    pub sibia: SibiaSim,
    /// SIMD under the same budget.
    pub simd: SimdSim,
    /// Weight-stationary systolic array.
    pub sa_ws: SystolicSim,
    /// Output-stationary systolic array.
    pub sa_os: SystolicSim,
}

impl ComparisonSet {
    /// Builds the set with a shared default budget.
    pub fn new(cfg: PanaceaConfig) -> Self {
        let budget = cfg.budget;
        ComparisonSet {
            panacea: PanaceaSim::new(cfg),
            sibia: SibiaSim::new(budget),
            simd: SimdSim::new(budget),
            sa_ws: SystolicSim::new(SystolicFlow::WeightStationary, budget),
            sa_os: SystolicSim::new(SystolicFlow::OutputStationary, budget),
        }
    }

    /// Default configuration set.
    pub fn default_set() -> Self {
        ComparisonSet::new(PanaceaConfig::default())
    }

    /// The shared budget.
    pub fn budget(&self) -> HardwareBudget {
        self.panacea.config().budget
    }

    /// Baselines in the paper's order (SA-WS, SA-OS, SIMD, Sibia).
    pub fn baselines(&self) -> [&dyn Accelerator; 4] {
        [&self.sa_ws, &self.sa_os, &self.simd, &self.sibia]
    }
}

/// Renders an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(header_line.join("  ").len()));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

/// Prints a table and, when `--json` is among the CLI args, a JSON dump of
/// the rows keyed by header.
pub fn emit(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("{}", render_table(title, headers, rows));
    if std::env::args().any(|a| a == "--json") {
        let objs: Vec<serde_json::Value> = rows
            .iter()
            .map(|row| {
                let map: serde_json::Map<String, serde_json::Value> = headers
                    .iter()
                    .zip(row)
                    .map(|(h, c)| ((*h).to_string(), serde_json::Value::String(c.clone())))
                    .collect();
                serde_json::Value::Object(map)
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({ "title": title, "rows": objs }))
                .expect("serializable")
        );
    }
}

/// Formats a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a ratio as `×N.NN`.
pub fn ratio(v: f64) -> String {
    format!("x{v:.2}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use panacea_models::profile::{profile_layer, ProfileOptions};
    use panacea_models::zoo::Benchmark;

    #[test]
    fn conversion_uses_engine_semantics() {
        let spec = &Benchmark::DeitBase.spec().layers[0];
        let opts = ProfileOptions {
            sample_m: 64,
            sample_k: 64,
            sample_n: 64,
            ..ProfileOptions::default()
        };
        let p = profile_layer(spec, &opts);
        let pan = to_layer_work(&p, EngineKind::Panacea);
        let dense = to_layer_work(&p, EngineKind::Dense);
        assert_eq!(dense.rho_x, 0.0);
        assert!(pan.rho_x >= dense.rho_x);
        assert_eq!(pan.m, spec.m);
        assert_eq!(pan.w_planes, 2);
    }

    #[test]
    fn table_renders_all_rows() {
        let s = render_table("t", &["a", "bb"], &[vec!["1".into(), "2".into()]]);
        assert!(s.contains("bb"));
        assert!(s.contains('1'));
    }

    #[test]
    fn comparison_set_builds() {
        let set = ComparisonSet::default_set();
        assert_eq!(set.baselines().len(), 4);
        assert_eq!(set.panacea.name(), "Panacea");
    }
}
