//! Summary statistics and error metrics.
//!
//! Used by the PTQ calibration (mean/std/histogram → DBS typing), the
//! sparsity analyses (fraction-in-range), and the quality-proxy evaluation
//! (MSE / SQNR between float reference and dequantized outputs).

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(panacea_tensor::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(panacea_tensor::stats::mean(&[]), 0.0);
/// ```
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|&v| f64::from(v)).sum::<f64>() / xs.len() as f64) as f32
}

/// Population standard deviation; `0.0` for slices shorter than 2.
///
/// # Examples
///
/// ```
/// let s = panacea_tensor::stats::std_dev(&[1.0, 1.0, 1.0]);
/// assert_eq!(s, 0.0);
/// ```
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = f64::from(mean(xs));
    let var = xs.iter().map(|&v| (f64::from(v) - m).powi(2)).sum::<f64>() / xs.len() as f64;
    (var.sqrt()) as f32
}

/// Minimum and maximum of a slice.
///
/// Returns `(0.0, 0.0)` for an empty slice, which matches the quantizer
/// convention that an empty calibration tensor quantizes to all-zero.
pub fn min_max(xs: &[f32]) -> (f32, f32) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in xs {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// The `q`-th percentile (`q ∈ [0, 100]`) by linear interpolation.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 100]` or the slice is empty.
pub fn percentile(xs: &[f32], q: f32) -> f32 {
    assert!((0.0..=100.0).contains(&q), "percentile {q} out of range");
    assert!(!xs.is_empty(), "percentile of empty slice");
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(f32::total_cmp);
    let pos = q / 100.0 * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f32;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Fixed-bin histogram over integer values, as recorded by the DBS
/// distribution-monitoring step during calibration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    lo: i32,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with one bin per integer in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo`.
    pub fn new(lo: i32, hi: i32) -> Self {
        assert!(hi >= lo, "histogram range [{lo}, {hi}] is empty");
        Histogram {
            lo,
            counts: vec![0; (hi - lo + 1) as usize],
        }
    }

    /// Records one observation; out-of-range values clamp to the end bins,
    /// mirroring the saturating behaviour of the quantizer.
    pub fn record(&mut self, v: i32) {
        let idx = (v - self.lo).clamp(0, self.counts.len() as i32 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Records every value of a slice.
    pub fn record_all(&mut self, vs: &[i32]) {
        for &v in vs {
            self.record(v);
        }
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count in the single bin for integer value `v` (0 if out of range).
    pub fn count(&self, v: i32) -> u64 {
        let idx = v - self.lo;
        if idx < 0 || idx as usize >= self.counts.len() {
            return 0;
        }
        self.counts[idx as usize]
    }

    /// Fraction of observations falling in `lo..=hi` (inclusive).
    ///
    /// This is exactly the paper's "values in the slice-skip range"
    /// statistic (Fig. 8).
    pub fn fraction_in(&self, lo: i32, hi: i32) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut acc = 0u64;
        for v in lo..=hi {
            acc += self.count(v);
        }
        acc as f64 / total as f64
    }

    /// Mean of the recorded integer distribution.
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo as f64 + i as f64) * c as f64)
            .sum();
        sum / total as f64
    }

    /// Standard deviation of the recorded integer distribution.
    pub fn std_dev(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let m = self.mean();
        let var: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let d = self.lo as f64 + i as f64 - m;
                d * d * c as f64
            })
            .sum::<f64>()
            / total as f64;
        var.sqrt()
    }
}

/// Mean squared error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse operands differ in length");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (f64::from(x) - f64::from(y)).powi(2))
        .sum::<f64>()
        / a.len() as f64
}

/// Signal-to-quantization-noise ratio in dB: `10·log10(‖a‖² / ‖a−b‖²)`.
///
/// Returns `f64::INFINITY` when the error is exactly zero, which is the
/// expected outcome for the bit-exact AQS-GEMM path.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sqnr_db(reference: &[f32], approx: &[f32]) -> f64 {
    assert_eq!(
        reference.len(),
        approx.len(),
        "sqnr operands differ in length"
    );
    let sig: f64 = reference.iter().map(|&x| f64::from(x).powi(2)).sum();
    let err: f64 = reference
        .iter()
        .zip(approx)
        .map(|(&x, &y)| (f64::from(x) - f64::from(y)).powi(2))
        .sum();
    if err == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (sig / err).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_constant() {
        let xs = [5.0; 10];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(std_dev(&xs), 0.0);
    }

    #[test]
    fn std_matches_known_value() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn min_max_on_mixed_signs() {
        assert_eq!(min_max(&[-3.0, 2.0, 0.5]), (-3.0, 2.0));
        assert_eq!(min_max(&[]), (0.0, 0.0));
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "percentile of empty slice")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn histogram_counts_and_fraction() {
        let mut h = Histogram::new(0, 255);
        h.record_all(&[10, 10, 20, 300, -5]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(10), 2);
        assert_eq!(h.count(255), 1); // clamped 300
        assert_eq!(h.count(0), 1); // clamped -5
        assert!((h.fraction_in(10, 20) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn histogram_moments() {
        let mut h = Histogram::new(-10, 10);
        h.record_all(&[-2, 0, 2]);
        assert!((h.mean() - 0.0).abs() < 1e-12);
        assert!((h.std_dev() - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mse_and_sqnr() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(mse(&a, &b), 0.0);
        assert_eq!(sqnr_db(&a, &b), f64::INFINITY);
        let c = [1.0, 2.0, 4.0];
        assert!((mse(&a, &c) - 1.0 / 3.0).abs() < 1e-12);
        assert!(sqnr_db(&a, &c) > 10.0);
    }
}
