//! Shared f32 transformer math: LayerNorm, softmax, multi-head
//! attention, and elementwise addition.
//!
//! These used to live inside `panacea_models::engine`, but the quantized
//! block engine needs the *same* float semantics for its non-GEMM glue
//! (so a quantized block and the float oracle diverge only where
//! quantization actually happens). Centralizing them here gives both one
//! implementation; `engine` re-exports them for compatibility.
//!
//! Activations follow the workspace GEMM convention: a tensor is
//! `features × tokens` (`K × N`).

use crate::Matrix;

/// Per-token (column-wise) LayerNorm with unit gain and zero bias.
pub fn layer_norm(x: &Matrix<f32>) -> Matrix<f32> {
    let (k, n) = x.shape();
    let mut out = Matrix::<f32>::zeros(k, n);
    for c in 0..n {
        let mut mean = 0f32;
        for r in 0..k {
            mean += x[(r, c)];
        }
        mean /= k as f32;
        let mut var = 0f32;
        for r in 0..k {
            let d = x[(r, c)] - mean;
            var += d * d;
        }
        var /= k as f32;
        let inv = 1.0 / (var + 1e-5).sqrt();
        for r in 0..k {
            out[(r, c)] = (x[(r, c)] - mean) * inv;
        }
    }
    out
}

/// Numerically-stable softmax.
pub fn softmax_in_place(xs: &mut [f32]) {
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0f32;
    for v in xs.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in xs.iter_mut() {
        *v /= sum;
    }
}

/// Multi-head self-attention over a stacked QKV tensor
/// (`3·d_model × tokens`, rows ordered Q then K then V): per head,
/// scores `A[i][j] = (q_i · k_j) / √d_h` softmaxed over `j`, then the
/// context `Σ_j A[i][j]·v_j`. Returns the `d_model × tokens` context.
///
/// Every token attends to every column, so callers batching independent
/// sequences must invoke this once per sequence segment.
///
/// # Panics
///
/// Panics if `qkv.rows()` is not divisible by `3·n_heads` or `n_heads`
/// is zero.
pub fn multi_head_attention(qkv: &Matrix<f32>, n_heads: usize) -> Matrix<f32> {
    assert!(n_heads > 0, "attention needs at least one head");
    assert_eq!(
        qkv.rows() % (3 * n_heads),
        0,
        "QKV rows {} must divide by 3·n_heads",
        qkv.rows()
    );
    let d = qkv.rows() / 3;
    let t = qkv.cols();
    let dh = d / n_heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let mut ctx = Matrix::<f32>::zeros(d, t);
    for h in 0..n_heads {
        let q0 = h * dh;
        for i in 0..t {
            let mut row = vec![0f32; t];
            for (j, slot) in row.iter_mut().enumerate() {
                let mut dot = 0f32;
                for f in 0..dh {
                    dot += qkv[(q0 + f, i)] * qkv[(d + q0 + f, j)];
                }
                *slot = dot * scale;
            }
            softmax_in_place(&mut row);
            for f in 0..dh {
                let mut acc = 0f32;
                for (j, &a) in row.iter().enumerate() {
                    acc += a * qkv[(2 * d + q0 + f, j)];
                }
                ctx[(q0 + f, i)] = acc;
            }
        }
    }
    ctx
}

/// Causal multi-head self-attention over a stacked QKV tensor: token `i`
/// attends only to tokens `j ≤ i`. This is the decoder-style counterpart
/// of [`multi_head_attention`] and the full-prefix oracle for KV-cached
/// decode — [`multi_head_attention_decode`] with an empty prefix is
/// bit-identical to this, column for column.
///
/// # Panics
///
/// Same conditions as [`multi_head_attention`].
pub fn multi_head_attention_causal(qkv: &Matrix<f32>, n_heads: usize) -> Matrix<f32> {
    multi_head_attention_decode(qkv, &[], &[], n_heads)
}

/// Incremental causal multi-head attention: `qkv_new` stacks Q/K/V for
/// `t_new` freshly appended tokens (`3·d_model × t_new`), while
/// `k_prefix`/`v_prefix` hold the cached keys/values of every earlier
/// token in **token-major** layout — token `j`'s feature vector
/// occupies `[j·d_model, (j+1)·d_model)` — so a cache appends one token
/// in O(d_model) without rebuilding the prefix. New token `i` (global
/// position `t_prefix + i`) attends causally over the whole prefix plus
/// the new tokens up to and including itself; cached tokens are never
/// recomputed, so one decode step costs O(prefix) instead of
/// O(prefix²).
///
/// Scores and context sums iterate global positions in ascending order
/// with the same accumulation pattern as [`multi_head_attention_causal`],
/// so stepping tokens one at a time through this function is
/// **bit-identical** to one full causal pass over the concatenated
/// sequence (given bit-identical cached K/V, which column-independent
/// GEMMs guarantee).
///
/// Returns the `d_model × t_new` context for the new tokens only.
///
/// # Panics
///
/// Panics if `n_heads` is zero, `qkv_new.rows()` is not divisible by
/// `3·n_heads`, or the prefix slices disagree with each other or are
/// not a whole number of `d_model`-feature tokens.
pub fn multi_head_attention_decode(
    qkv_new: &Matrix<f32>,
    k_prefix: &[f32],
    v_prefix: &[f32],
    n_heads: usize,
) -> Matrix<f32> {
    assert!(n_heads > 0, "attention needs at least one head");
    assert_eq!(
        qkv_new.rows() % (3 * n_heads),
        0,
        "QKV rows {} must divide by 3·n_heads",
        qkv_new.rows()
    );
    let d = qkv_new.rows() / 3;
    assert_eq!(k_prefix.len(), v_prefix.len(), "K/V prefix mismatch");
    assert_eq!(
        k_prefix.len() % d,
        0,
        "prefix length must be a whole number of d_model tokens"
    );
    let t_prev = k_prefix.len() / d;
    let t_new = qkv_new.cols();
    let dh = d / n_heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let mut ctx = Matrix::<f32>::zeros(d, t_new);
    for h in 0..n_heads {
        let q0 = h * dh;
        for i in 0..t_new {
            // Global attention span of new token i: every cached token
            // plus the new tokens up to and including itself.
            let span = t_prev + i + 1;
            let mut row = vec![0f32; span];
            for (j, slot) in row.iter_mut().enumerate() {
                let mut dot = 0f32;
                for f in 0..dh {
                    let k = if j < t_prev {
                        k_prefix[j * d + q0 + f]
                    } else {
                        qkv_new[(d + q0 + f, j - t_prev)]
                    };
                    dot += qkv_new[(q0 + f, i)] * k;
                }
                *slot = dot * scale;
            }
            softmax_in_place(&mut row);
            for f in 0..dh {
                let mut acc = 0f32;
                for (j, &a) in row.iter().enumerate() {
                    let v = if j < t_prev {
                        v_prefix[j * d + q0 + f]
                    } else {
                        qkv_new[(2 * d + q0 + f, j - t_prev)]
                    };
                    acc += a * v;
                }
                ctx[(q0 + f, i)] = acc;
            }
        }
    }
    ctx
}

/// Elementwise sum of two same-shaped matrices (the residual add).
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn add(a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32> {
    assert_eq!(a.shape(), b.shape(), "residual add needs matching shapes");
    Matrix::from_fn(a.rows(), a.cols(), |r, c| a[(r, c)] + b[(r, c)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DistributionKind;
    use crate::stats;

    fn input(d: usize, t: usize, seed: u64) -> Matrix<f32> {
        let mut rng = crate::seeded_rng(seed);
        DistributionKind::Gaussian {
            mean: 0.0,
            std: 1.0,
        }
        .sample_matrix(d, t, &mut rng)
    }

    #[test]
    fn layer_norm_normalizes_columns() {
        let x = input(32, 8, 1);
        let n = layer_norm(&x);
        for c in 0..8 {
            let col: Vec<f32> = (0..32).map(|r| n[(r, c)]).collect();
            assert!(stats::mean(&col).abs() < 1e-4);
            assert!((stats::std_dev(&col) - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut xs = vec![1.0, 2.0, 3.0, -10.0];
        softmax_in_place(&mut xs);
        let sum: f32 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(xs.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn attention_rows_are_convex_mixes_of_values() {
        // With Q ≡ 0 every score row softmaxes to uniform, so the context
        // is the mean of the value columns — an exact, hand-checkable case.
        let d = 8;
        let t = 4;
        let mut qkv = Matrix::<f32>::zeros(3 * d, t);
        for r in 0..d {
            for c in 0..t {
                qkv[(2 * d + r, c)] = (r * t + c) as f32;
            }
        }
        let ctx = multi_head_attention(&qkv, 2);
        for r in 0..d {
            let mean: f32 = (0..t).map(|c| qkv[(2 * d + r, c)]).sum::<f32>() / t as f32;
            for c in 0..t {
                assert!((ctx[(r, c)] - mean).abs() < 1e-4, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn attention_segments_are_column_independent_across_calls() {
        // Running two sequences separately must equal slicing a stacked
        // tensor — the property the batched block engine relies on.
        let qkv_a = input(3 * 16, 5, 2);
        let qkv_b = input(3 * 16, 3, 3);
        let a = multi_head_attention(&qkv_a, 4);
        let b = multi_head_attention(&qkv_b, 4);
        let stacked = Matrix::hstack(&[&qkv_a, &qkv_b]).expect("same rows");
        let a2 = multi_head_attention(&stacked.submatrix(0, 0, 3 * 16, 5), 4);
        let b2 = multi_head_attention(&stacked.submatrix(0, 5, 3 * 16, 3), 4);
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }

    #[test]
    fn causal_attention_last_token_matches_bidirectional() {
        // The last token attends over the whole sequence under both
        // masks, so its context column must agree bit for bit.
        let qkv = input(3 * 16, 6, 4);
        let full = multi_head_attention(&qkv, 4);
        let causal = multi_head_attention_causal(&qkv, 4);
        let t = qkv.cols() - 1;
        for r in 0..16 {
            assert_eq!(full[(r, t)].to_bits(), causal[(r, t)].to_bits());
        }
    }

    #[test]
    fn causal_attention_first_token_attends_only_itself() {
        let qkv = input(3 * 8, 3, 5);
        let causal = multi_head_attention_causal(&qkv, 2);
        // Token 0's softmax row has one entry, so its context is exactly
        // its own value vector.
        for r in 0..8 {
            assert_eq!(causal[(r, 0)].to_bits(), qkv[(2 * 8 + r, 0)].to_bits());
        }
    }

    /// Pushes the K and V feature vectors of every column of a stacked
    /// QKV tensor onto token-major prefix buffers.
    fn push_kv(qkv: &Matrix<f32>, k: &mut Vec<f32>, v: &mut Vec<f32>) {
        let d = qkv.rows() / 3;
        for c in 0..qkv.cols() {
            for f in 0..d {
                k.push(qkv[(d + f, c)]);
            }
            for f in 0..d {
                v.push(qkv[(2 * d + f, c)]);
            }
        }
    }

    #[test]
    fn stepwise_decode_is_bit_exact_vs_full_causal_pass() {
        let d = 16;
        let t = 7;
        let qkv = input(3 * d, t, 6);
        let oracle = multi_head_attention_causal(&qkv, 4);
        // Step one token at a time, carrying the K/V prefix forward.
        let mut k = Vec::new();
        let mut v = Vec::new();
        for i in 0..t {
            let step = qkv.submatrix(0, i, 3 * d, 1);
            let ctx = multi_head_attention_decode(&step, &k, &v, 4);
            for r in 0..d {
                assert_eq!(
                    ctx[(r, 0)].to_bits(),
                    oracle[(r, i)].to_bits(),
                    "token {i} row {r} diverged from the full causal pass"
                );
            }
            push_kv(&step, &mut k, &mut v);
        }
    }

    #[test]
    fn multi_token_decode_steps_match_single_token_steps() {
        // Feeding 3 tokens in one decode call must equal feeding them
        // one at a time — the prefill-vs-step equivalence.
        let d = 8;
        let qkv = input(3 * d, 5, 7);
        let prefix = qkv.submatrix(0, 0, 3 * d, 2);
        let mut k = Vec::new();
        let mut v = Vec::new();
        push_kv(&prefix, &mut k, &mut v);
        let chunk = qkv.submatrix(0, 2, 3 * d, 3);
        let at_once = multi_head_attention_decode(&chunk, &k, &v, 2);
        let mut k_step = k.clone();
        let mut v_step = v.clone();
        for i in 0..3 {
            let step = chunk.submatrix(0, i, 3 * d, 1);
            let ctx = multi_head_attention_decode(&step, &k_step, &v_step, 2);
            for r in 0..d {
                assert_eq!(ctx[(r, 0)].to_bits(), at_once[(r, i)].to_bits());
            }
            push_kv(&step, &mut k_step, &mut v_step);
        }
    }

    #[test]
    fn add_is_elementwise() {
        let a = Matrix::from_fn(2, 3, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(2, 3, |r, c| (r * c) as f32);
        let s = add(&a, &b);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(s[(r, c)], (r + c + r * c) as f32);
            }
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn misaligned_qkv_rejected() {
        multi_head_attention(&Matrix::<f32>::zeros(10, 2), 2);
    }
}
