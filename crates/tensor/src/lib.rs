//! Dense matrix substrate for the Panacea reproduction.
//!
//! This crate provides the numeric foundation that every other crate in the
//! workspace builds on:
//!
//! * [`Matrix`] — a simple, row-major, owned 2-D container used for weights,
//!   activations, and integer GEMM results;
//! * [`dist`] — synthetic value distributions that mimic the activation and
//!   weight statistics of real DNN layers (Gaussian weights, asymmetric
//!   post-GELU activations, long-tail channels with outliers, …);
//! * [`ops`] — shared f32 transformer math (LayerNorm, softmax,
//!   multi-head attention, residual add) used by both the float forward
//!   engine and the quantized block engine;
//! * [`stats`] — summary statistics (mean/std/histogram/percentiles) and
//!   error metrics (MSE, SQNR) used by the PTQ calibration and by the
//!   quality-proxy evaluation.
//!
//! # Examples
//!
//! ```
//! use panacea_tensor::{Matrix, dist::DistributionKind, stats};
//!
//! let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
//! assert_eq!(m[(1, 2)], 5.0);
//! let mean = stats::mean(m.as_slice());
//! assert!((mean - 2.5).abs() < 1e-6);
//! let _kind = DistributionKind::Gaussian { mean: 0.0, std: 1.0 };
//! ```

pub mod dist;
pub mod matrix;
pub mod ops;
pub mod stats;

pub use matrix::Matrix;

/// Deterministic RNG used across the workspace so every experiment is
/// reproducible from a single `u64` seed.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// let mut rng = panacea_tensor::seeded_rng(42);
/// let x: f64 = rng.gen();
/// let mut rng2 = panacea_tensor::seeded_rng(42);
/// let y: f64 = rng2.gen();
/// assert_eq!(x, y);
/// ```
pub fn seeded_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
