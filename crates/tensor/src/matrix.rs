//! A small, owned, row-major matrix type.
//!
//! The Panacea workloads only need 2-D dense storage with element access,
//! iteration, transposition, and a reference GEMM; a full linear-algebra
//! library would be overkill and would obscure the bit-exact integer paths
//! that the accelerator model cares about.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// Errors produced by matrix constructors and shape-checked operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The provided buffer length does not equal `rows * cols`.
    LengthMismatch {
        /// Expected number of elements (`rows * cols`).
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match shape ({expected} expected)"
                )
            }
            MatrixError::ShapeMismatch { left, right } => {
                write!(f, "incompatible shapes {left:?} and {right:?}")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

/// Owned row-major matrix.
///
/// # Examples
///
/// ```
/// use panacea_tensor::Matrix;
///
/// let a = Matrix::from_rows(vec![vec![1i32, 2], vec![3, 4]]).unwrap();
/// assert_eq!(a.rows(), 2);
/// assert_eq!(a[(1, 0)], 3);
/// let t = a.transposed();
/// assert_eq!(t[(0, 1)], 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Default + Clone> Matrix<T> {
    /// Creates a `rows × cols` matrix filled with `T::default()`.
    ///
    /// # Examples
    ///
    /// ```
    /// let z = panacea_tensor::Matrix::<i32>::zeros(2, 2);
    /// assert_eq!(z.as_slice(), &[0, 0, 0, 0]);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T> Matrix<T> {
    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::LengthMismatch`] if `data.len() != rows * cols`.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), panacea_tensor::matrix::MatrixError> {
    /// let m = panacea_tensor::Matrix::from_vec(2, 2, vec![1, 2, 3, 4])?;
    /// assert_eq!(m[(0, 1)], 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, MatrixError> {
        if data.len() != rows * cols {
            return Err(MatrixError::LengthMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    ///
    /// # Examples
    ///
    /// ```
    /// let id = panacea_tensor::Matrix::from_fn(3, 3, |r, c| (r == c) as i32);
    /// assert_eq!(id[(2, 2)], 1);
    /// assert_eq!(id[(0, 2)], 0);
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from nested row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::LengthMismatch`] if the rows are ragged.
    pub fn from_rows(rows: Vec<Vec<T>>) -> Result<Self, MatrixError> {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            if row.len() != n_cols {
                return Err(MatrixError::LengthMismatch {
                    expected: n_cols,
                    actual: row.len(),
                });
            }
            data.extend(row);
        }
        Ok(Matrix {
            rows: n_rows,
            cols: n_cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the elements.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat row-major view of the elements.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat row-major buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow of one row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[T] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of one row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over all elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Mutable iterator over all elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Applies `f` to every element, producing a new matrix of the results.
    ///
    /// # Examples
    ///
    /// ```
    /// let m = panacea_tensor::Matrix::from_fn(2, 2, |r, c| (r + c) as i32);
    /// let doubled = m.map(|&v| v * 2);
    /// assert_eq!(doubled[(1, 1)], 4);
    /// ```
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(f).collect(),
        }
    }
}

impl<T: std::hash::Hash> Matrix<T> {
    /// A stable 64-bit digest of the matrix contents (shape + elements).
    ///
    /// Equal matrices always hash equal, so the digest can key
    /// content-addressed structures — the serving layer's request cache
    /// uses it to pick a cache shard and to pre-hash lookup keys without
    /// rehashing the element buffer at every probe. The digest is
    /// deterministic within a build but not a cross-version wire format.
    ///
    /// # Examples
    ///
    /// ```
    /// use panacea_tensor::Matrix;
    ///
    /// let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as i32);
    /// let b = a.clone();
    /// assert_eq!(a.content_hash(), b.content_hash());
    /// let mut c = a.clone();
    /// c[(0, 0)] += 1;
    /// assert_ne!(a.content_hash(), c.content_hash());
    /// ```
    pub fn content_hash(&self) -> u64 {
        use std::hash::{DefaultHasher, Hasher};
        let mut h = DefaultHasher::new();
        std::hash::Hash::hash(self, &mut h);
        h.finish()
    }
}

impl<T: Clone> Matrix<T> {
    /// Returns the transpose of the matrix.
    pub fn transposed(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].clone())
    }

    /// Extracts the sub-matrix `rows_range × cols_range`, clamped to bounds.
    ///
    /// Ranges extending past the matrix edge are truncated, which makes tile
    /// extraction at matrix borders ergonomic for the accelerator model.
    pub fn submatrix(
        &self,
        row_start: usize,
        col_start: usize,
        n_rows: usize,
        n_cols: usize,
    ) -> Matrix<T> {
        let r_end = (row_start + n_rows).min(self.rows);
        let c_end = (col_start + n_cols).min(self.cols);
        let r0 = row_start.min(r_end);
        let c0 = col_start.min(c_end);
        Matrix::from_fn(r_end - r0, c_end - c0, |r, c| {
            self[(r0 + r, c0 + c)].clone()
        })
    }

    /// Concatenates matrices side-by-side along the column axis.
    ///
    /// This is how the serving runtime coalesces the activation columns of
    /// independent requests into one wide GEMM `N` dimension.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if the operands disagree on
    /// row count. An empty input produces a `0 × 0` matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use panacea_tensor::Matrix;
    ///
    /// let a = Matrix::from_rows(vec![vec![1i32, 2], vec![3, 4]]).unwrap();
    /// let b = Matrix::from_rows(vec![vec![5i32], vec![6]]).unwrap();
    /// let c = Matrix::hstack(&[&a, &b]).unwrap();
    /// assert_eq!(c.shape(), (2, 3));
    /// assert_eq!(c.row(0), &[1, 2, 5]);
    /// ```
    pub fn hstack(parts: &[&Matrix<T>]) -> Result<Matrix<T>, MatrixError> {
        let Some(first) = parts.first() else {
            return Ok(Matrix {
                rows: 0,
                cols: 0,
                data: Vec::new(),
            });
        };
        let rows = first.rows;
        for p in parts {
            if p.rows != rows {
                return Err(MatrixError::ShapeMismatch {
                    left: first.shape(),
                    right: p.shape(),
                });
            }
        }
        let mut data = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for r in 0..rows {
            for p in parts {
                data.extend_from_slice(&p.data[r * p.cols..(r + 1) * p.cols]);
            }
        }
        let cols = parts.iter().map(|p| p.cols).sum();
        Ok(Matrix { rows, cols, data })
    }

    /// Splits the matrix into column blocks of the given widths — the
    /// inverse of [`hstack`](Self::hstack).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if the widths do not sum to
    /// the column count.
    ///
    /// # Examples
    ///
    /// ```
    /// use panacea_tensor::Matrix;
    ///
    /// let m = Matrix::from_rows(vec![vec![1i32, 2, 5], vec![3, 4, 6]]).unwrap();
    /// let parts = m.split_cols(&[2, 1]).unwrap();
    /// assert_eq!(parts[0].row(1), &[3, 4]);
    /// assert_eq!(parts[1].row(0), &[5]);
    /// ```
    pub fn split_cols(&self, widths: &[usize]) -> Result<Vec<Matrix<T>>, MatrixError> {
        let total: usize = widths.iter().sum();
        if total != self.cols {
            return Err(MatrixError::ShapeMismatch {
                left: self.shape(),
                right: (self.rows, total),
            });
        }
        let mut out = Vec::with_capacity(widths.len());
        let mut c0 = 0usize;
        for &w in widths {
            out.push(Matrix::from_fn(self.rows, w, |r, c| {
                self[(r, c0 + c)].clone()
            }));
            c0 += w;
        }
        Ok(out)
    }
}

impl<T> Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl<T> IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Matrix<i32> {
    /// Reference integer GEMM: `self (M×K) · rhs (K×N)` in exact `i64`
    /// accumulation, truncated back to `i32` (all Panacea workloads fit).
    ///
    /// This is the bit-exact oracle every sliced GEMM is checked against.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), panacea_tensor::matrix::MatrixError> {
    /// use panacea_tensor::Matrix;
    /// let a = Matrix::from_vec(2, 2, vec![1, 2, 3, 4])?;
    /// let b = Matrix::from_vec(2, 2, vec![5, 6, 7, 8])?;
    /// let c = a.gemm(&b)?;
    /// assert_eq!(c.as_slice(), &[19, 22, 43, 50]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn gemm(&self, rhs: &Matrix<i32>) -> Result<Matrix<i32>, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for m in 0..self.rows {
            for k in 0..self.cols {
                let a = i64::from(self[(m, k)]);
                if a == 0 {
                    continue;
                }
                for n in 0..rhs.cols {
                    let acc = i64::from(out[(m, n)]) + a * i64::from(rhs[(k, n)]);
                    out[(m, n)] = acc as i32;
                }
            }
        }
        Ok(out)
    }
}

impl Matrix<f32> {
    /// Reference floating-point GEMM used by the model forward engine.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn gemm_f32(&self, rhs: &Matrix<f32>) -> Result<Matrix<f32>, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for m in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(m, k)];
                if a == 0.0 {
                    continue;
                }
                for n in 0..rhs.cols {
                    out[(m, n)] += a * rhs[(k, n)];
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::<i32>::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.iter().all(|&v| v == 0));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        let err = Matrix::from_vec(2, 2, vec![1, 2, 3]).unwrap_err();
        assert_eq!(
            err,
            MatrixError::LengthMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn from_rows_rejects_ragged_rows() {
        let err = Matrix::from_rows(vec![vec![1, 2], vec![3]]).unwrap_err();
        assert!(matches!(err, MatrixError::LengthMismatch { .. }));
    }

    #[test]
    fn indexing_is_row_major() {
        let m = Matrix::from_vec(2, 3, vec![0, 1, 2, 10, 11, 12]).unwrap();
        assert_eq!(m[(0, 2)], 2);
        assert_eq!(m[(1, 0)], 10);
        assert_eq!(m.row(1), &[10, 11, 12]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as i32);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn submatrix_clamps_to_bounds() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as i32);
        let s = m.submatrix(2, 3, 10, 10);
        assert_eq!(s.shape(), (2, 1));
        assert_eq!(s[(0, 0)], 11);
        assert_eq!(s[(1, 0)], 15);
    }

    #[test]
    fn gemm_matches_hand_computed() {
        let a = Matrix::from_vec(2, 3, vec![1, -2, 3, 0, 4, -1]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![2, 0, 1, -1, 3, 5]).unwrap();
        let c = a.gemm(&b).unwrap();
        assert_eq!(c.as_slice(), &[9, 17, 1, -9]);
    }

    #[test]
    fn gemm_shape_mismatch_is_error() {
        let a = Matrix::<i32>::zeros(2, 3);
        let b = Matrix::<i32>::zeros(2, 3);
        assert!(matches!(a.gemm(&b), Err(MatrixError::ShapeMismatch { .. })));
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |r, c| (r as i32 + 1) * (c as i32 - 2));
        let id = Matrix::from_fn(4, 4, |r, c| i32::from(r == c));
        assert_eq!(a.gemm(&id).unwrap(), a);
        assert_eq!(id.gemm(&a).unwrap(), a);
    }

    #[test]
    fn map_preserves_shape() {
        let m = Matrix::from_fn(2, 5, |r, c| (r + c) as i32);
        let f = m.map(|&v| v as f32 * 0.5);
        assert_eq!(f.shape(), (2, 5));
        assert_eq!(f[(1, 4)], 2.5);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = Matrix::<i32>::zeros(2, 2);
        m.row_mut(1)[0] = 7;
        assert_eq!(m[(1, 0)], 7);
    }

    #[test]
    fn hstack_then_split_round_trips() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 10 + c) as i32);
        let b = Matrix::from_fn(3, 5, |r, c| -((r * 7 + c) as i32));
        let c = Matrix::from_fn(3, 1, |r, _| r as i32);
        let stacked = Matrix::hstack(&[&a, &b, &c]).unwrap();
        assert_eq!(stacked.shape(), (3, 8));
        let parts = stacked.split_cols(&[2, 5, 1]).unwrap();
        assert_eq!(parts, vec![a, b, c]);
    }

    #[test]
    fn hstack_of_nothing_is_empty() {
        let m = Matrix::<i32>::hstack(&[]).unwrap();
        assert_eq!(m.shape(), (0, 0));
    }

    #[test]
    fn hstack_rejects_row_mismatch() {
        let a = Matrix::<i32>::zeros(2, 2);
        let b = Matrix::<i32>::zeros(3, 2);
        assert!(matches!(
            Matrix::hstack(&[&a, &b]),
            Err(MatrixError::ShapeMismatch {
                left: (2, 2),
                right: (3, 2)
            })
        ));
    }

    #[test]
    fn split_cols_rejects_bad_widths() {
        let m = Matrix::<i32>::zeros(2, 4);
        assert!(m.split_cols(&[2, 1]).is_err());
        assert!(m.split_cols(&[5]).is_err());
    }

    #[test]
    fn content_hash_distinguishes_shape_and_data() {
        let a = Matrix::from_fn(2, 6, |r, c| (r * 6 + c) as i32);
        // Same flat buffer, different shape.
        let b = Matrix::from_vec(3, 4, a.as_slice().to_vec()).unwrap();
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(a.content_hash(), a.clone().content_hash());
        let mut c = a.clone();
        c[(1, 5)] = -1;
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn split_cols_with_zero_width_blocks() {
        let m = Matrix::from_fn(2, 3, |r, c| (r + c) as i32);
        let parts = m.split_cols(&[0, 3, 0]).unwrap();
        assert_eq!(parts[0].shape(), (2, 0));
        assert_eq!(parts[1], m);
        assert_eq!(parts[2].shape(), (2, 0));
    }
}
