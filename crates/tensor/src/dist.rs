//! Synthetic value distributions mimicking real DNN weight/activation
//! statistics.
//!
//! The paper's hardware results depend on the *distribution* of quantized
//! values (which determines bit-slice sparsity), not on any particular
//! trained checkpoint. This module generates floating-point tensors whose
//! shapes match the paper's observations:
//!
//! * DNN **weights** are near-zero Gaussian (`Gaussian`);
//! * **post-GELU** activations are heavily one-sided with a spike just
//!   below zero and a long positive tail (`PostGelu`) — this is the
//!   distribution behind the paper's remark that `MLP.FC2` inputs have many
//!   zero HO slices even under asymmetric quantization (Fig. 14(a));
//! * **post-LayerNorm / attention** activations are asymmetric Gaussians
//!   with a shifted mean (`AsymmetricGaussian`), the case motivating
//!   asymmetric quantization (Fig. 2, Fig. 5(a));
//! * **LLM activations with outlier channels** (OPT/Llama) are a Gaussian
//!   core plus a sparse set of large-magnitude channels (`OutlierChannels`),
//!   the case motivating wide-distribution DBS types (Fig. 9);
//! * `LongTail` (Laplace) models wide heavy-tailed layers (DBS type-3).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::Matrix;

/// A parameterized family of synthetic layer-value distributions.
///
/// # Examples
///
/// ```
/// use panacea_tensor::dist::DistributionKind;
///
/// let mut rng = panacea_tensor::seeded_rng(7);
/// let m = DistributionKind::PostGelu { scale: 1.0 }.sample_matrix(8, 8, &mut rng);
/// // GELU output is bounded below by roughly -0.17 * scale.
/// assert!(m.iter().all(|&v| v > -0.2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DistributionKind {
    /// Zero-mean-like Gaussian `N(mean, std²)`; models trained weights.
    Gaussian {
        /// Mean of the distribution.
        mean: f32,
        /// Standard deviation (must be finite and non-negative).
        std: f32,
    },
    /// Gaussian shifted away from zero; models post-LayerNorm activations
    /// whose quantized range is poorly used by symmetric quantization.
    AsymmetricGaussian {
        /// Mean of the distribution (typically nonzero).
        mean: f32,
        /// Standard deviation.
        std: f32,
        /// Skew factor in `[0, 1)`: fraction of samples drawn from a
        /// second Gaussian at `mean + 3·std`, producing a one-sided tail.
        skew: f32,
    },
    /// GELU applied to a Gaussian pre-activation; models MLP hidden
    /// activations (many near-zero values, long positive tail).
    PostGelu {
        /// Standard deviation of the Gaussian pre-activation.
        scale: f32,
    },
    /// Laplace (double-exponential); models wide heavy-tailed layers.
    LongTail {
        /// Location parameter.
        mean: f32,
        /// Laplace diversity `b` (std = `b·√2`).
        scale: f32,
    },
    /// Gaussian core with a sparse set of high-magnitude columns; models
    /// OPT/Llama outlier channels.
    OutlierChannels {
        /// Std of the dense Gaussian core.
        core_std: f32,
        /// Multiplier applied to outlier columns.
        outlier_scale: f32,
        /// Fraction of columns that are outliers, in `[0, 1]`.
        outlier_frac: f32,
    },
    /// Uniform on `[lo, hi]`; used by property tests as an adversarial case.
    Uniform {
        /// Inclusive lower bound.
        lo: f32,
        /// Inclusive upper bound.
        hi: f32,
    },
    /// Softmax-like distribution in `[0, 1]` concentrated near zero with a
    /// few rows summing to one; models attention probabilities.
    SoftmaxLike {
        /// Effective number of large entries per row (sharpness).
        sharpness: f32,
    },
    /// Transformer activation: a tight Gaussian core plus sparse outlier
    /// *channels* (rows of a `K × N` activation) whose positive and
    /// negative tails scale asymmetrically. This is the well-documented
    /// structure of post-LayerNorm transformer activations: the outliers
    /// stretch the quantization range far beyond the bulk, so the bulk
    /// collapses into a few quantized steps around the zero-point — the
    /// regime that gives Panacea its high HO-slice sparsity.
    TransformerAct {
        /// Mean of the dense core (nonzero for post-LayerNorm layers,
        /// which is what makes asymmetric quantization pay off).
        core_mean: f32,
        /// Standard deviation of the dense core.
        core_std: f32,
        /// Multiplier applied to positive samples of outlier channels.
        pos_scale: f32,
        /// Multiplier applied to negative samples of outlier channels.
        neg_scale: f32,
        /// Fraction of channels (rows) that are outliers, in `[0, 1]`.
        outlier_frac: f32,
    },
    /// Post-GELU (or post-ReLU) activation with outlier channels: most
    /// values pile up just below/at zero while rare channels carry large
    /// positive values. Models MLP hidden states and CNN feature maps.
    PostGeluOutlier {
        /// Standard deviation of the Gaussian pre-activation.
        scale: f32,
        /// Multiplier applied to outlier channels (rows).
        outlier_scale: f32,
        /// Fraction of outlier channels, in `[0, 1]`.
        outlier_frac: f32,
    },
}

impl DistributionKind {
    /// Draws a single sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f32 {
        match *self {
            DistributionKind::Gaussian { mean, std } => mean + std * gaussian(rng),
            DistributionKind::AsymmetricGaussian { mean, std, skew } => {
                if rng.gen::<f32>() < skew {
                    mean + 3.0 * std + std * gaussian(rng).abs()
                } else {
                    mean + std * gaussian(rng)
                }
            }
            DistributionKind::PostGelu { scale } => gelu(scale * gaussian(rng)),
            DistributionKind::LongTail { mean, scale } => {
                let u: f32 = rng.gen::<f32>() - 0.5;
                mean - scale * u.signum() * (1.0 - 2.0 * u.abs()).max(1e-12).ln()
            }
            DistributionKind::OutlierChannels { core_std, .. } => core_std * gaussian(rng),
            DistributionKind::Uniform { lo, hi } => rng.gen::<f32>() * (hi - lo) + lo,
            DistributionKind::SoftmaxLike { sharpness } => {
                // Exponential race: most entries tiny, a few near 1/sharpness.
                let e: f32 = -(rng.gen::<f32>().max(1e-12)).ln();
                (e / sharpness).min(1.0)
            }
            DistributionKind::TransformerAct {
                core_mean,
                core_std,
                ..
            } => core_mean + core_std * gaussian(rng),
            DistributionKind::PostGeluOutlier { scale, .. } => gelu(scale * gaussian(rng)),
        }
    }

    /// Draws a full `rows × cols` matrix.
    ///
    /// For [`DistributionKind::OutlierChannels`] the outlier pattern is
    /// column-wise (matching per-channel outliers in transformer
    /// activations); for all other kinds elements are i.i.d.
    pub fn sample_matrix(&self, rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix<f32> {
        match *self {
            DistributionKind::OutlierChannels {
                core_std,
                outlier_scale,
                outlier_frac,
            } => {
                let mut outlier: Vec<bool> =
                    (0..cols).map(|_| rng.gen::<f32>() < outlier_frac).collect();
                // Real tensors always exhibit at least one outlier channel;
                // forcing one keeps small sampled tiles in the same regime.
                if cols > 0 && !outlier.iter().any(|&b| b) {
                    outlier[0] = true;
                }
                let mut m = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    for c in 0..cols {
                        let v = core_std * gaussian(rng);
                        m[(r, c)] = if outlier[c] { v * outlier_scale } else { v };
                    }
                }
                m
            }
            DistributionKind::TransformerAct {
                core_mean,
                core_std,
                pos_scale,
                neg_scale,
                outlier_frac,
            } => {
                // At least one outlier channel so the range is stretched
                // deterministically, as in real calibration data.
                let mut outlier: Vec<bool> =
                    (0..rows).map(|_| rng.gen::<f32>() < outlier_frac).collect();
                if rows > 0 && !outlier.iter().any(|&b| b) {
                    outlier[0] = true;
                }
                let mut m = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    for c in 0..cols {
                        let v = core_std * gaussian(rng);
                        m[(r, c)] = if outlier[r] {
                            if v >= 0.0 {
                                v * pos_scale
                            } else {
                                v * neg_scale
                            }
                        } else {
                            core_mean + v
                        };
                    }
                }
                m
            }
            DistributionKind::PostGeluOutlier {
                scale,
                outlier_scale,
                outlier_frac,
            } => {
                let mut outlier: Vec<bool> =
                    (0..rows).map(|_| rng.gen::<f32>() < outlier_frac).collect();
                if rows > 0 && !outlier.iter().any(|&b| b) {
                    outlier[0] = true;
                }
                let mut m = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    // GELU is applied *after* the outlier-bearing
                    // pre-activation, so the negative lobe stays bounded at
                    // ≈ −0.17 while outlier channels stretch the positive
                    // range — exactly the paper's MLP.FC2 regime.
                    let s_eff = if outlier[r] {
                        scale * outlier_scale
                    } else {
                        scale
                    };
                    for c in 0..cols {
                        m[(r, c)] = gelu(s_eff * gaussian(rng));
                    }
                }
                m
            }
            _ => Matrix::from_fn(rows, cols, |_, _| self.sample(rng)),
        }
    }
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen::<f32>().max(1e-12);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// GELU activation (tanh approximation, as used by GPT-2/BERT).
///
/// # Examples
///
/// ```
/// let y = panacea_tensor::dist::gelu(0.0);
/// assert_eq!(y, 0.0);
/// assert!(panacea_tensor::dist::gelu(3.0) > 2.9);
/// assert!(panacea_tensor::dist::gelu(-3.0) > -0.01);
/// ```
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    fn rng() -> rand::rngs::StdRng {
        crate::seeded_rng(0xC0FFEE)
    }

    #[test]
    fn gaussian_matches_requested_moments() {
        let mut r = rng();
        let m = DistributionKind::Gaussian {
            mean: 2.0,
            std: 0.5,
        }
        .sample_matrix(200, 200, &mut r);
        assert!((stats::mean(m.as_slice()) - 2.0).abs() < 0.02);
        assert!((stats::std_dev(m.as_slice()) - 0.5).abs() < 0.02);
    }

    #[test]
    fn post_gelu_is_one_sided() {
        let mut r = rng();
        let m = DistributionKind::PostGelu { scale: 1.0 }.sample_matrix(100, 100, &mut r);
        let min = m.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(min > -0.2, "GELU lower bound violated: {min}");
        // Most mass is near zero.
        let near_zero = m.iter().filter(|v| v.abs() < 0.25).count();
        assert!(near_zero > m.len() / 3);
    }

    #[test]
    fn asymmetric_gaussian_is_skewed() {
        let mut r = rng();
        let d = DistributionKind::AsymmetricGaussian {
            mean: 1.0,
            std: 1.0,
            skew: 0.3,
        };
        let m = d.sample_matrix(200, 100, &mut r);
        // With a positive skew tail the mean exceeds the base mean.
        assert!(stats::mean(m.as_slice()) > 1.5);
    }

    #[test]
    fn long_tail_has_heavier_tails_than_gaussian() {
        let mut r = rng();
        let lt = DistributionKind::LongTail {
            mean: 0.0,
            scale: 1.0,
        }
        .sample_matrix(100, 100, &mut r);
        let std = stats::std_dev(lt.as_slice());
        let frac_beyond_3std =
            lt.iter().filter(|v| v.abs() > 3.0 * std).count() as f32 / lt.len() as f32;
        // Gaussian would be ~0.27%; Laplace is noticeably more.
        assert!(frac_beyond_3std > 0.005, "tail fraction {frac_beyond_3std}");
    }

    #[test]
    fn outlier_channels_inflate_some_columns() {
        let mut r = rng();
        let d = DistributionKind::OutlierChannels {
            core_std: 1.0,
            outlier_scale: 20.0,
            outlier_frac: 0.1,
        };
        let m = d.sample_matrix(200, 64, &mut r);
        let mut col_max = vec![0f32; 64];
        for row in 0..200 {
            for col in 0..64 {
                col_max[col] = col_max[col].max(m[(row, col)].abs());
            }
        }
        let big = col_max.iter().filter(|&&v| v > 15.0).count();
        assert!(big >= 2, "expected some outlier columns, got {big}");
        assert!(big <= 20, "too many outlier columns: {big}");
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut r = rng();
        let m = DistributionKind::Uniform { lo: -1.0, hi: 3.0 }.sample_matrix(50, 50, &mut r);
        assert!(m.iter().all(|&v| (-1.0..=3.0).contains(&v)));
    }

    #[test]
    fn softmax_like_in_unit_interval() {
        let mut r = rng();
        let m = DistributionKind::SoftmaxLike { sharpness: 8.0 }.sample_matrix(50, 50, &mut r);
        assert!(m.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Concentrated near zero.
        assert!(stats::mean(m.as_slice()) < 0.3);
    }

    #[test]
    fn transformer_act_stretches_range_asymmetrically() {
        let mut r = rng();
        let d = DistributionKind::TransformerAct {
            core_mean: 0.2,
            core_std: 0.5,
            pos_scale: 10.0,
            neg_scale: 5.0,
            outlier_frac: 0.02,
        };
        let m = d.sample_matrix(128, 128, &mut r);
        let (lo, hi) = crate::stats::min_max(m.as_slice());
        // The positive tail reaches farther than the negative one.
        assert!(hi > -lo, "hi={hi} lo={lo}");
        assert!(hi > 5.0, "outliers should stretch the range, hi={hi}");
        // The bulk stays tight: most values within ±2 core std.
        let bulk = m.iter().filter(|v| v.abs() < 1.0).count();
        assert!(bulk as f64 / m.len() as f64 > 0.9);
    }

    #[test]
    fn post_gelu_outlier_is_one_sided_with_big_channels() {
        let mut r = rng();
        let d = DistributionKind::PostGeluOutlier {
            scale: 1.0,
            outlier_scale: 10.0,
            outlier_frac: 0.02,
        };
        let m = d.sample_matrix(128, 64, &mut r);
        let (lo, hi) = crate::stats::min_max(m.as_slice());
        assert!(lo > -2.0, "GELU keeps the negative lobe small, lo={lo}");
        assert!(hi > 5.0, "outlier channels reach high, hi={hi}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = DistributionKind::Gaussian {
            mean: 0.0,
            std: 1.0,
        };
        let a = d.sample_matrix(4, 4, &mut crate::seeded_rng(9));
        let b = d.sample_matrix(4, 4, &mut crate::seeded_rng(9));
        assert_eq!(a, b);
    }
}
