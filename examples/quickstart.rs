//! Quickstart: quantize a layer asymmetrically, bit-slice it, run the
//! AQS-GEMM with compression + compensation, and verify the result is
//! bit-exact against the dense integer reference.
//!
//! Run with: `cargo run --example quickstart`

use panacea::bitslice::{sparsity, SlicedActivation, SlicedWeight};
use panacea::core::aqs::aqs_gemm;
use panacea::quant::dbs::DbsConfig;
use panacea::quant::{ActivationCalibrator, Quantizer, SymmetricQuantizer};
use panacea::tensor::{dist::DistributionKind, seeded_rng};

fn main() {
    let mut rng = seeded_rng(42);

    // 1. A synthetic layer: near-zero weights, outlier-structured
    //    activations (the regime that motivates the paper).
    let w_f = DistributionKind::OutlierChannels {
        core_std: 0.02,
        outlier_scale: 5.0,
        outlier_frac: 0.01,
    }
    .sample_matrix(64, 128, &mut rng);
    let x_f = DistributionKind::TransformerAct {
        core_mean: 0.1,
        core_std: 0.5,
        pos_scale: 10.0,
        neg_scale: 6.0,
        outlier_frac: 0.01,
    }
    .sample_matrix(128, 64, &mut rng);

    // 2. PTQ: symmetric 7-bit weights, asymmetric 8-bit activations with
    //    zero-point manipulation and distribution-based slicing.
    let wq = SymmetricQuantizer::calibrate(w_f.as_slice(), 7);
    let w_int = wq.quantize_matrix(&w_f);
    let mut cal = ActivationCalibrator::new(8)
        .with_zpm(true)
        .with_dbs(DbsConfig::default());
    cal.observe(&x_f);
    let cfg = cal.finalize();
    let x_int = cfg.quantizer.quantize_matrix(&x_f);
    println!(
        "calibrated: zp = {}, DBS {} (l = {}), frequent HO slice r = {:04b}, coverage {:.1}%",
        cfg.quantizer.params().zero_point,
        cfg.dbs_type,
        cfg.dbs_type.lo_bits(),
        cfg.frequent_ho_slice,
        cfg.coverage * 100.0
    );

    // 3. Bit-slice both operands.
    let sw = SlicedWeight::from_int(&w_int, 1).expect("7-bit weights");
    let sx = SlicedActivation::from_uint(&x_int, 1, cfg.dbs_type).expect("8-bit activations");
    println!(
        "HO vector sparsity: weights {:.1}%, activations {:.1}%",
        sparsity::weight_vector_sparsity(sw.ho()) * 100.0,
        sparsity::act_vector_sparsity(sx.ho(), cfg.frequent_ho_slice) * 100.0
    );

    // 4. AQS-GEMM: compress, skip, compensate — and stay exact.
    let (out, workload) = aqs_gemm(&sw, &sx, cfg.frequent_ho_slice);
    let reference = sw.reconstruct().gemm(&sx.reconstruct()).expect("shapes");
    assert_eq!(out, reference, "AQS-GEMM must be bit-exact");
    println!(
        "AQS-GEMM exact ✓ — {} multiplies (+{} compensation), {} 4-bit slices moved",
        workload.mul, workload.comp_mul, workload.ema_slices
    );
    let dense_mul = 4 * w_int.rows() as u64 * w_int.cols() as u64 * x_int.cols() as u64;
    println!(
        "vs dense bit-slice GEMM: {dense_mul} multiplies → {:.1}% skipped",
        (1.0 - workload.total_mul() as f64 / dense_mul as f64) * 100.0
    );
}
