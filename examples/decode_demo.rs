//! Stateful decode-session demo: multi-client autoregressive decode
//! through a localhost TCP gateway, with three gates:
//!
//! 1. **cached-vs-recompute agreement** — every KV-cached decode step
//!    served by the gateway is bit-identical to a full causal recompute
//!    (`forward_segments_causal`) of the session's whole prefix;
//! 2. **cross-client determinism** — concurrent sessions fed the same
//!    token stream produce bit-identical generations;
//! 3. **continuous batching** — 8 concurrent sessions' single-token
//!    steps fuse into shared GEMM passes (batch occupancy > 1), their
//!    outputs stay bit-identical to the batching-disabled serial path,
//!    and aggregate tokens/s beats serial per-session stepping ≥ 2×;
//! 4. **session lifecycle** — stats report the sessions and their KV
//!    bytes while open, closing frees them, and a closed session errors
//!    with `unknown_session`.
//!
//! It also prints decode throughput (tokens/s) at prefix lengths
//! {16, 64, 256} for both the KV-cached path (per-token cost ~flat in
//! the prefix) and the full recompute an O(tokens²) stateless loop
//! would pay per token (grows linearly).
//!
//! Run with: `cargo run --release --example decode_demo`

use std::sync::{Arc, Barrier};
use std::time::Instant;

use panacea::block::{zoo_hidden_states, zoo_transformer, BlockBuilder, QuantizedBlock};
use panacea::gateway::{Gateway, GatewayClient, GatewayConfig, GatewayServer, ServerConfig};
use panacea::models::engine::TransformerConfig;
use panacea::models::zoo::Benchmark;
use panacea::serve::PreparedModel;
use panacea::tensor::{ops, Matrix};

const D_MODEL: usize = 32;
const CLIENTS: usize = 3;
const GEN_TOKENS: usize = 8;

fn prefix_tokens(len: usize) -> Matrix<f32> {
    Matrix::from_fn(D_MODEL, len, |r, c| {
        (((r * 29 + c * 11) % 89) as f32 - 44.0) / 22.0
    })
}

/// The demo's "sampler": the next input token is the LayerNorm of the
/// previous output column — deterministic, finite, and magnitude-stable,
/// standing in for embed(argmax(logits)) in a stack with no LM head.
fn next_token(out: &Matrix<f32>) -> Matrix<f32> {
    let last = out.submatrix(0, out.cols() - 1, D_MODEL, 1);
    ops::layer_norm(&last)
}

/// Full causal recompute oracle: the entire prefix through the stack,
/// returning the last token's output column.
fn recompute_last(blocks: &[QuantizedBlock], inputs: &Matrix<f32>) -> Matrix<f32> {
    let mut h = inputs.clone();
    for b in blocks {
        h = b.forward_segments_causal(&h, &[h.cols()]).0;
    }
    h.submatrix(0, h.cols() - 1, D_MODEL, 1)
}

fn main() {
    // 1. A 2-block decoder with GPT-2 zoo-distribution weights.
    let cfg = TransformerConfig {
        d_model: D_MODEL,
        n_heads: 4,
        d_ff: 64,
        n_layers: 2,
    };
    let oracle = zoo_transformer(Benchmark::Gpt2, cfg, 17);
    let calibration = zoo_hidden_states(Benchmark::Gpt2, D_MODEL, 48, 18);
    let blocks = BlockBuilder::default()
        .prepare(&oracle, &calibration)
        .expect("prepare blocks");
    let model = Arc::new(PreparedModel::from_blocks("decoder", blocks.clone()).expect("servable"));
    let gateway = Arc::new(Gateway::from_shared(
        vec![Arc::clone(&model)],
        GatewayConfig::default(),
    ));
    // Under the reactor transport, fused-decode occupancy is bounded by
    // the in-flight request cap — the worker pool. The batching phase
    // below drives 8 concurrent sessions and gates their fusion, so
    // provision at least that many execution workers.
    let server = GatewayServer::bind_with(
        Arc::clone(&gateway),
        "127.0.0.1:0",
        ServerConfig {
            reactor_workers: BATCH_SESSIONS,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    println!(
        "decode gateway on {addr} ({} blocks, d_model={D_MODEL}, {} clients)",
        blocks.len(),
        CLIENTS
    );
    println!(
        "\n{:>7}  {:>16}  {:>18}  {:>8}",
        "prefix", "cached tok/s", "recompute tok/s", "speedup"
    );

    for prefix_len in [16usize, 64, 256] {
        let prefix = prefix_tokens(prefix_len);

        // 2. Concurrent clients, each with its own session, decoding
        //    the same stream: prefill the prefix, then generate
        //    GEN_TOKENS autoregressively.
        let mut threads = Vec::new();
        for _ in 0..CLIENTS {
            let prefix = prefix.clone();
            threads.push(std::thread::spawn(move || {
                let mut client = GatewayClient::connect(addr).expect("connect");
                let open = client.session_open("decoder").expect("opened");
                let mut outs: Vec<Matrix<f32>> = Vec::new();
                let prefill = client
                    .decode(open.session, prefix.clone())
                    .expect("prefill");
                assert_eq!(prefill.tokens, prefix.cols());
                assert_eq!(
                    prefill.shard, open.shard,
                    "decode step left the session's pinned shard"
                );
                let gen_started = Instant::now();
                let mut token = next_token(&prefill.hidden);
                for _ in 0..GEN_TOKENS {
                    let step = client.decode(open.session, token.clone()).expect("step");
                    token = next_token(&step.hidden);
                    outs.push(step.hidden);
                }
                let gen_elapsed = gen_started.elapsed();
                let closed = client.session_close(open.session).expect("closed");
                assert_eq!(closed.tokens, prefix.cols() + GEN_TOKENS);
                (outs, gen_elapsed)
            }));
        }
        let results: Vec<(Vec<Matrix<f32>>, std::time::Duration)> = threads
            .into_iter()
            .map(|t| t.join().expect("client thread"))
            .collect();

        // 3. Gate: cross-client determinism — same stream, same bits.
        for (c, (outs, _)) in results.iter().enumerate().skip(1) {
            assert_eq!(
                outs, &results[0].0,
                "client {c} diverged from client 0 on an identical stream"
            );
        }

        // 4. Gate: cached decode vs full causal recompute, every step,
        //    and time the recompute — the cost a stateless O(tokens²)
        //    serving loop would pay for the same generation.
        let mut inputs = prefix.clone();
        let mut outs0 = Vec::new();
        {
            // Reproduce the prefill output's last column to seed the
            // sampler exactly as the clients did.
            let mut h = inputs.clone();
            for b in &blocks {
                h = b.forward_segments_causal(&h, &[h.cols()]).0;
            }
            outs0.push(h);
        }
        let recompute_started = Instant::now();
        for (step, out) in results[0].0.iter().enumerate() {
            let token = next_token(outs0.last().expect("seeded"));
            inputs = Matrix::hstack(&[&inputs, &token]).expect("same rows");
            let expect = recompute_last(&blocks, &inputs);
            for r in 0..D_MODEL {
                assert_eq!(
                    out[(r, 0)].to_bits(),
                    expect[(r, 0)].to_bits(),
                    "cached decode diverged from full recompute at step {step}, row {r}"
                );
            }
            outs0.push(out.clone());
        }
        let recompute_elapsed = recompute_started.elapsed();

        let cached_tps = (CLIENTS * GEN_TOKENS) as f64
            / results
                .iter()
                .map(|(_, d)| d.as_secs_f64())
                .fold(0.0, f64::max);
        let recompute_tps = GEN_TOKENS as f64 / recompute_elapsed.as_secs_f64();
        println!(
            "{:>7}  {:>16.1}  {:>18.1}  {:>7.1}x",
            prefix_len,
            cached_tps,
            recompute_tps,
            cached_tps / recompute_tps
        );
    }

    // 5. Continuous batching: the same generation work executed two
    //    ways — serial per-session stepping with batching disabled (the
    //    pre-batching behavior), then 8 concurrent clients through the
    //    batching gateway. Gates: bit-identical outputs, fused-pass
    //    occupancy > 1, and >= 2x aggregate tokens/s.
    const BATCH_SESSIONS: usize = 8;
    const BATCH_PREFIX: usize = 16;
    const BATCH_GEN: usize = 24;
    let serial_gateway = Arc::new(Gateway::from_shared(
        vec![Arc::clone(&model)],
        GatewayConfig {
            session: panacea::serve::SessionConfig {
                max_decode_batch: 1, // steps execute inline, one per GEMM pass
                ..Default::default()
            },
            ..GatewayConfig::default()
        },
    ));
    let serial_server =
        GatewayServer::bind(Arc::clone(&serial_gateway), "127.0.0.1:0").expect("bind");
    let serial_outs = {
        let mut client = GatewayClient::connect(serial_server.local_addr()).expect("connect");
        let prefix = prefix_tokens(BATCH_PREFIX);
        let mut sessions = Vec::new();
        for _ in 0..BATCH_SESSIONS {
            let open = client.session_open("decoder").expect("opened");
            let prefill = client
                .decode(open.session, prefix.clone())
                .expect("prefill");
            sessions.push((open.session, next_token(&prefill.hidden)));
        }
        let started = Instant::now();
        let mut outs: Vec<Matrix<f32>> = Vec::new();
        for _ in 0..BATCH_GEN {
            for (session, token) in &mut sessions {
                let step = client.decode(*session, token.clone()).expect("step");
                *token = next_token(&step.hidden);
                outs.push(step.hidden);
            }
        }
        let elapsed = started.elapsed();
        for (session, _) in &sessions {
            client.session_close(*session).expect("closed");
        }
        let serial_tps = (BATCH_SESSIONS * BATCH_GEN) as f64 / elapsed.as_secs_f64();
        (outs, serial_tps)
    };
    let (serial_outs, serial_tps) = serial_outs;

    let stats_before = GatewayClient::connect(addr)
        .expect("connect")
        .stats()
        .expect("stats");
    let barrier = Arc::new(Barrier::new(BATCH_SESSIONS));
    let mut threads = Vec::new();
    for _ in 0..BATCH_SESSIONS {
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            let mut client = GatewayClient::connect(addr).expect("connect");
            let prefix = prefix_tokens(BATCH_PREFIX);
            let open = client.session_open("decoder").expect("opened");
            let prefill = client
                .decode(open.session, prefix.clone())
                .expect("prefill");
            let mut token = next_token(&prefill.hidden);
            barrier.wait();
            let started = Instant::now();
            let mut outs: Vec<Matrix<f32>> = Vec::new();
            for _ in 0..BATCH_GEN {
                let step = client.decode(open.session, token.clone()).expect("step");
                token = next_token(&step.hidden);
                outs.push(step.hidden);
            }
            let elapsed = started.elapsed();
            client.session_close(open.session).expect("closed");
            (outs, elapsed)
        }));
    }
    let results: Vec<(Vec<Matrix<f32>>, std::time::Duration)> = threads
        .into_iter()
        .map(|t| t.join().expect("batch client"))
        .collect();
    let batched_tps = (BATCH_SESSIONS * BATCH_GEN) as f64
        / results
            .iter()
            .map(|(_, d)| d.as_secs_f64())
            .fold(0.0, f64::max);

    // Gate: every batched client's generation is bit-identical to the
    // serial (batching-disabled) path — every session decodes the same
    // stream, so every output sequence must match bit for bit (to_bits,
    // so a signed-zero swap could never slip through f32 equality).
    for (c, (outs, _)) in results.iter().enumerate() {
        for (step, out) in outs.iter().enumerate() {
            let expect = &serial_outs[step * BATCH_SESSIONS];
            for r in 0..D_MODEL {
                assert_eq!(
                    out[(r, 0)].to_bits(),
                    expect[(r, 0)].to_bits(),
                    "batched client {c} step {step} row {r} diverged from serial stepping"
                );
            }
        }
    }

    // Gate: the fused passes actually coalesced concurrent sessions.
    let stats_after = GatewayClient::connect(addr)
        .expect("connect")
        .stats()
        .expect("stats");
    let steps_delta: u64 = stats_after
        .shards
        .iter()
        .zip(&stats_before.shards)
        .map(|(a, b)| a.decode_steps - b.decode_steps)
        .sum();
    let batches_delta: u64 = stats_after
        .shards
        .iter()
        .zip(&stats_before.shards)
        .map(|(a, b)| a.decode_batches - b.decode_batches)
        .sum();
    assert!(batches_delta > 0, "no fused decode pass ran");
    let occupancy = steps_delta as f64 / batches_delta as f64;
    assert!(
        occupancy > 1.0,
        "concurrent sessions never shared a fused pass (occupancy {occupancy:.2})"
    );

    // Gate: continuous batching pays off end to end.
    let speedup = batched_tps / serial_tps;
    println!(
        "\ncontinuous batching @ {BATCH_SESSIONS} sessions: serial {serial_tps:.1} tok/s, \
         batched {batched_tps:.1} tok/s ({speedup:.2}x, occupancy {occupancy:.2})"
    );
    assert!(
        speedup >= 2.0,
        "continuous batching underperformed: {speedup:.2}x aggregate speedup at \
         {BATCH_SESSIONS} sessions (need >= 2x)"
    );

    // 6. Lifecycle gates: a closed session errors explicitly, and the
    //    gateway is clean (no sessions, no KV bytes) after the run.
    let mut client = GatewayClient::connect(addr).expect("connect");
    let open = client.session_open("decoder").expect("opened");
    client.decode(open.session, prefix_tokens(2)).expect("step");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards[open.shard].open_sessions, 1);
    assert!(stats.shards[open.shard].kv_bytes > 0);
    client.session_close(open.session).expect("closed");
    match client.decode(open.session, prefix_tokens(1)) {
        Err(panacea::gateway::GatewayError::Remote { kind, .. }) => {
            assert_eq!(kind, panacea::gateway::ErrorKind::UnknownSession)
        }
        other => panic!("closed session served a step: {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards.iter().map(|s| s.open_sessions).sum::<u64>(), 0);
    assert_eq!(stats.shards.iter().map(|s| s.kv_bytes).sum::<u64>(), 0);
    let steps: u64 = stats.shards.iter().map(|s| s.decode_steps).sum();
    println!("\n{steps} decode steps served; all decode gates passed ✓");

    // 7. Observability: per-stage latency quantiles over the wire, and
    //    a deliberately-slowed request pinned by the trace verb.
    let metrics = client.metrics().expect("metrics");
    println!(
        "\nper-stage latency quantiles (metrics verb, snapshot #{}, uptime {}ms):",
        metrics.seq, metrics.uptime_ms
    );
    println!(
        "{:>18}  {:>10}  {:>12}  {:>12}",
        "stage", "count", "p50 µs", "p99 µs"
    );
    let print_stages = |label: &str, stages: &[panacea::gateway::StageSummary]| {
        for s in stages.iter().filter(|s| s.count > 0) {
            println!(
                "{:>18}  {:>10}  {:>12.1}  {:>12.1}",
                format!("{label}{}", s.stage),
                s.count,
                s.p50 as f64 / 1_000.0,
                s.p99 as f64 / 1_000.0,
            );
        }
    };
    print_stages("", &metrics.gateway);
    for (i, shard) in metrics.shards.iter().enumerate() {
        // Occupancy histograms hold raw counts, not nanoseconds; keep
        // the µs table honest by printing only the duration stages.
        let durations: Vec<_> = shard
            .iter()
            .filter(|s| s.stage != "decode_occupancy")
            .cloned()
            .collect();
        print_stages(&format!("shard{i}/"), &durations);
    }
    print_stages("", &metrics.block);
    // Gate: the decode traffic above filled the decode stages on some
    // shard, and the block engine's sub-layer rollup saw every pass.
    assert!(
        metrics
            .shards
            .iter()
            .flatten()
            .any(|s| s.stage == "decode_pass" && s.count > 0),
        "decode_pass histogram recorded nothing"
    );
    assert!(
        metrics.block.iter().all(|s| s.count > 0),
        "block sub-layer stages recorded nothing"
    );

    // A gateway with a 1ms slow threshold: a 256-token prefill is
    // deliberately heavy enough to cross it, so the trace verb must pin
    // the request and return its complete span tree.
    let traced_gateway = Arc::new(Gateway::from_shared(
        vec![Arc::clone(&model)],
        GatewayConfig {
            trace: panacea::gateway::TraceConfig {
                slow_threshold: std::time::Duration::from_millis(1),
                ..Default::default()
            },
            ..GatewayConfig::default()
        },
    ));
    let traced_server =
        GatewayServer::bind(Arc::clone(&traced_gateway), "127.0.0.1:0").expect("bind");
    let mut client = GatewayClient::connect(traced_server.local_addr()).expect("connect");
    let open = client.session_open("decoder").expect("opened");
    client
        .decode(open.session, prefix_tokens(256))
        .expect("slow prefill");
    client.session_close(open.session).expect("closed");
    let reply = client.trace(8).expect("trace");
    let slow = reply
        .traces
        .iter()
        .find(|t| t.verb == "decode")
        .expect("slow prefill was not pinned by the tracer");
    assert!(slow.total_us >= 1_000, "pinned trace is not actually slow");
    let root = &slow.spans[0];
    assert_eq!((root.id, root.parent.is_none()), (0, true));
    assert_eq!(root.dur_us, slow.total_us);
    for want in ["admission_wait", "route", "execute"] {
        assert!(
            slow.spans
                .iter()
                .any(|s| s.stage == want && s.parent == Some(0)),
            "span {want:?} missing from the pinned trace"
        );
    }
    println!(
        "\nslow-request trace #{} ({}µs total):",
        slow.id, slow.total_us
    );
    for span in &slow.spans {
        let indent = if span.parent.is_none() { "" } else { "  " };
        println!(
            "  {indent}{} [{}µs..{}µs]",
            span.stage,
            span.start_us,
            span.start_us + span.dur_us
        );
    }
    println!("\nall observability gates passed ✓");
}
