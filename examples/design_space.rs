//! Architecture design-space exploration: sweep the DWO/SWO split and DTP
//! on a DeiT-base-like workload and print throughput / energy-efficiency /
//! utilization, alongside the iso-resource baselines — a miniature of the
//! paper's Fig. 13 methodology as a library user would run it.
//!
//! Run with: `cargo run --example design_space`

use panacea::models::zoo::Benchmark;
use panacea::models::{profile_model, ProfileOptions};
use panacea::sim::arch::PanaceaConfig;
use panacea::sim::baselines::{SibiaSim, SimdSim, SystolicFlow, SystolicSim};
use panacea::sim::panacea::PanaceaSim;
use panacea::sim::workload::LayerWork;
use panacea::sim::{simulate_model, Accelerator};

fn main() {
    let model = Benchmark::DeitBase.spec();
    let profiles = profile_model(&model, &ProfileOptions::default());
    let layers: Vec<LayerWork> = profiles
        .iter()
        .map(|p| LayerWork {
            name: p.spec.name.clone(),
            m: p.spec.m,
            k: p.spec.k,
            n: p.spec.n,
            count: p.spec.count,
            w_planes: 2,
            x_planes: 2,
            rho_w: p.rho_w,
            rho_x: p.rho_x,
        })
        .collect();
    let budget = PanaceaConfig::default().budget;
    let clock = budget.clock_mhz;

    println!("DeiT-base on candidate Panacea configurations:");
    println!(
        "{:<26} {:>8} {:>8} {:>9} {:>9}",
        "configuration", "TOPS", "TOPS/W", "DWO util", "SWO util"
    );
    for (dwo, swo) in [(4usize, 8usize), (8, 4), (6, 6)] {
        for dtp in [false, true] {
            let sim = PanaceaSim::new(PanaceaConfig {
                dwo_per_pea: dwo,
                swo_per_pea: swo,
                dtp,
                ..PanaceaConfig::default()
            });
            let perf = simulate_model(&sim, &layers, clock);
            // Utilization of the first (largest) layer as representative.
            let lp = sim.simulate(&layers[0]);
            println!(
                "{:<26} {:>8.2} {:>8.3} {:>8.1}% {:>8.1}%",
                format!("{dwo} DWO + {swo} SWO, DTP={dtp}"),
                perf.tops,
                perf.tops_per_w,
                lp.util_primary * 100.0,
                lp.util_secondary * 100.0,
            );
        }
    }

    println!("\nIso-resource baselines:");
    let dense: Vec<LayerWork> = layers
        .iter()
        .map(|l| LayerWork {
            rho_w: 0.0,
            rho_x: 0.0,
            ..l.clone()
        })
        .collect();
    let baselines: Vec<Box<dyn Accelerator>> = vec![
        Box::new(SystolicSim::new(SystolicFlow::WeightStationary, budget)),
        Box::new(SystolicSim::new(SystolicFlow::OutputStationary, budget)),
        Box::new(SimdSim::new(budget)),
        Box::new(SibiaSim::new(budget)),
    ];
    for acc in &baselines {
        let perf = simulate_model(acc.as_ref(), &dense, clock);
        println!(
            "{:<26} {:>8.2} {:>8.3}",
            acc.name(),
            perf.tops,
            perf.tops_per_w
        );
    }
}
