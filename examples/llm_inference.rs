//! End-to-end quantized inference through a small transformer: run the
//! float forward pass, calibrate every weight GEMM from captured
//! activations, re-execute each layer with the AQS-GEMM integer path
//! (zero-point folded into the bias, Eq. 3), and report per-layer sparsity
//! and quality.
//!
//! Run with: `cargo run --example llm_inference`

use panacea::bitslice::{sparsity, SlicedActivation, SlicedWeight};
use panacea::core::aqs::aqs_gemm;
use panacea::models::engine::{TinyTransformer, TransformerConfig};
use panacea::quant::dbs::DbsConfig;
use panacea::quant::{ActivationCalibrator, Quantizer, SymmetricQuantizer};
use panacea::tensor::{dist::DistributionKind, seeded_rng, stats, Matrix};

fn main() {
    // A miniature GPT-style model and a batch of token embeddings.
    let cfg = TransformerConfig {
        d_model: 64,
        n_heads: 4,
        d_ff: 128,
        n_layers: 2,
    };
    let model = TinyTransformer::new_random(cfg, 7);
    let mut rng = seeded_rng(11);
    let x = DistributionKind::Gaussian {
        mean: 0.0,
        std: 1.0,
    }
    .sample_matrix(64, 16, &mut rng);

    // Capture every weight GEMM's (weight, input) during the float pass.
    let mut captures = Vec::new();
    model.forward_captured(&x, &mut captures);
    println!("captured {} weight GEMMs\n", captures.len());
    println!(
        "{:<16} {:>6} {:>8} {:>8} {:>9} {:>10}",
        "layer", "DBS", "rho_w", "rho_x", "SQNR dB", "muls saved"
    );

    for cap in &captures {
        // Calibrate this layer (in a real flow the calibration batch is a
        // separate dataset; the structure is identical).
        let wq = SymmetricQuantizer::calibrate(cap.weight.as_slice(), 7);
        let w_int = wq.quantize_matrix(&cap.weight);
        let mut cal = ActivationCalibrator::new(8)
            .with_zpm(true)
            .with_dbs(DbsConfig::default());
        cal.observe(&cap.input);
        let qcfg = cal.finalize();
        let x_int = qcfg.quantizer.quantize_matrix(&cap.input);

        let sw = SlicedWeight::from_int(&w_int, 1).expect("weights fit");
        let sx = SlicedActivation::from_uint(&x_int, 1, qcfg.dbs_type).expect("activations fit");
        let (acc, wl) = aqs_gemm(&sw, &sx, qcfg.frequent_ho_slice);

        // Integer accumulators represent s_w·s_x·(W·(x − zp)); the zp·W·1
        // term folds into the bias (Eq. 3) — reconstruct the float output.
        let zp = qcfg.quantizer.params().zero_point;
        let row_sums: Vec<i64> = (0..w_int.rows())
            .map(|m| w_int.row(m).iter().map(|&v| i64::from(v)).sum())
            .collect();
        let scale = f64::from(wq.params().scale) * f64::from(qcfg.quantizer.params().scale);
        let deq = Matrix::from_fn(acc.rows(), acc.cols(), |m, n| {
            ((f64::from(acc[(m, n)]) - zp as f64 * row_sums[m] as f64) * scale) as f32
        });
        let reference = cap.weight.gemm_f32(&cap.input).expect("shapes");
        let sqnr = stats::sqnr_db(reference.as_slice(), deq.as_slice());

        let dense_mul = 4 * w_int.rows() as u64 * w_int.cols() as u64 * x_int.cols() as u64;
        println!(
            "{:<16} {:>6} {:>7.1}% {:>7.1}% {:>9.1} {:>9.1}%",
            cap.name,
            format!("{}", qcfg.dbs_type),
            sparsity::weight_vector_sparsity(sw.ho()) * 100.0,
            sparsity::act_vector_sparsity(sx.ho(), qcfg.frequent_ho_slice) * 100.0,
            sqnr,
            (1.0 - wl.total_mul() as f64 / dense_mul as f64) * 100.0,
        );
    }
    println!("\nEvery layer ran through the compressed AQS-GEMM path with exact integer results.");
}
