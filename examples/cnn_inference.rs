//! Quantized CNN inference: lower a small convolution stack to GEMMs with
//! im2col, run each through the AQS-GEMM pipeline, and report the
//! post-ReLU sparsity that makes CNNs a good fit for bit-slice skipping
//! (the paper's ResNet-18 benchmark in miniature).
//!
//! Run with: `cargo run --example cnn_inference`

use panacea::bitslice::sparsity;
use panacea::bitslice::SlicedActivation;
use panacea::core::pipeline::QuantizedLinear;
use panacea::models::conv::{conv_gemm, im2col, ConvShape};
use panacea::quant::dbs::DbsConfig;
use panacea::quant::{ActivationCalibrator, Quantizer};
use panacea::tensor::{dist::DistributionKind, seeded_rng, stats, Matrix};

fn main() {
    let mut rng = seeded_rng(17);
    // A 3-channel 16×16 input and two 3×3 conv layers (8 then 16 filters).
    let mut shape = ConvShape {
        channels: 3,
        height: 16,
        width: 16,
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
    };
    let mut fmap = DistributionKind::Gaussian {
        mean: 0.0,
        std: 1.0,
    }
    .sample_matrix(3, 16 * 16, &mut rng);

    println!(
        "{:<8} {:>14} {:>9} {:>10} {:>9}",
        "layer", "GEMM (MxKxN)", "DBS", "rho_x", "SQNR dB"
    );
    for (li, c_out) in [8usize, 16].into_iter().enumerate() {
        let w = DistributionKind::Gaussian {
            mean: 0.0,
            std: 0.15,
        }
        .sample_matrix(c_out, shape.gemm_k(), &mut rng);
        // Float reference through the conv (with ReLU).
        let reference = conv_gemm(&fmap, &w, shape, true);

        // Quantized path: calibrate on the im2col patches, run the layer.
        let patches = im2col(&fmap, shape);
        let mut cal = ActivationCalibrator::new(8)
            .with_zpm(true)
            .with_dbs(DbsConfig::default());
        cal.observe(&patches);
        let cfg = cal.finalize();
        let layer = QuantizedLinear::prepare(&w, &vec![0.0; c_out], 7, cfg).expect("layer");
        let (out_f, _) = layer.forward_f32(&patches);
        let out_relu = out_f.map(|&v| v.max(0.0));
        let sqnr = stats::sqnr_db(reference.as_slice(), out_relu.as_slice());

        // Sparsity of the patch codes this layer consumed.
        let codes = cfg.quantizer.quantize_matrix(&patches);
        let trimmed = Matrix::from_fn(codes.rows(), codes.cols() / 4 * 4, |r, c| codes[(r, c)]);
        let sx = SlicedActivation::from_uint(&trimmed, 1, cfg.dbs_type).expect("codes");
        let rho_x = sparsity::act_vector_sparsity(sx.ho(), cfg.frequent_ho_slice);

        println!(
            "conv{:<4} {:>4}x{:<4}x{:<4} {:>9} {:>9.1}% {:>9.1}",
            li,
            c_out,
            shape.gemm_k(),
            shape.gemm_n(),
            format!("{}", cfg.dbs_type),
            rho_x * 100.0,
            sqnr
        );

        // Next layer consumes this layer's (float) ReLU output.
        fmap = out_relu;
        shape = ConvShape {
            channels: c_out,
            ..shape
        };
    }
    println!("\nPost-ReLU feature maps quantize into the skip range around the zero-point,");
    println!("which is why the paper's ResNet-18 numbers benefit from AQS-GEMM too.");
}
