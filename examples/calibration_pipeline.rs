//! The PTQ calibration pipeline of the paper's Fig. 6, step by step, on
//! four characteristic activation distributions: base min/max calibration,
//! zero-point manipulation, and distribution-based slicing decisions —
//! with the resulting skip-range coverage at each stage.
//!
//! Run with: `cargo run --example calibration_pipeline`

use panacea::quant::dbs::DbsConfig;
use panacea::quant::{ActivationCalibrator, Quantizer};
use panacea::tensor::{dist::DistributionKind, seeded_rng};

fn main() {
    let cases: [(&str, DistributionKind); 4] = [
        (
            "post-LayerNorm (tight, asym outliers)",
            DistributionKind::TransformerAct {
                core_mean: 0.1,
                core_std: 0.5,
                pos_scale: 10.0,
                neg_scale: 6.0,
                outlier_frac: 0.01,
            },
        ),
        (
            "post-GELU (one-sided)",
            DistributionKind::PostGeluOutlier {
                scale: 1.0,
                outlier_scale: 8.0,
                outlier_frac: 0.02,
            },
        ),
        (
            "OPT outlier channels (extreme)",
            DistributionKind::TransformerAct {
                core_mean: 0.08,
                core_std: 0.25,
                pos_scale: 20.0,
                neg_scale: 12.0,
                outlier_frac: 0.02,
            },
        ),
        (
            "wide uniform (adversarial)",
            DistributionKind::Uniform { lo: -2.0, hi: 2.0 },
        ),
    ];

    println!(
        "{:<40} {:>5} {:>5} {:>7} {:>7} {:>7}",
        "distribution", "zp", "zp''", "base", "+ZPM", "+ZPM+DBS"
    );
    for (name, dist) in cases {
        let mut rng = seeded_rng(13);
        let batch = dist.sample_matrix(128, 128, &mut rng);

        let run = |zpm: bool, dbs: Option<DbsConfig>| {
            let mut cal = ActivationCalibrator::new(8).with_zpm(zpm);
            if let Some(cfg) = dbs {
                cal = cal.with_dbs(cfg);
            }
            cal.observe(&batch);
            cal.finalize()
        };
        let base = run(false, None);
        let zpm = run(true, None);
        let full = run(true, Some(DbsConfig::default()));
        println!(
            "{:<40} {:>5} {:>5} {:>6.1}% {:>6.1}% {:>6.1}%  ({}, r = {:04b})",
            name,
            base.quantizer.params().zero_point,
            full.quantizer.params().zero_point,
            base.coverage * 100.0,
            zpm.coverage * 100.0,
            full.coverage * 100.0,
            full.dbs_type,
            full.frequent_ho_slice,
        );
    }
    println!("\nCoverage = fraction of calibration values inside the HO-slice skip range;");
    println!("it lower-bounds the slice-level sparsity AQS-GEMM can exploit at inference.");
}
