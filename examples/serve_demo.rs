//! Serving demo: N concurrent requests through a shared `PreparedModel`,
//! with batched outputs verified bit-identical to sequential
//! single-request execution, and throughput measured for batch budgets
//! {1, 8, 32}.
//!
//! Run with: `cargo run --release --example serve_demo`

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use panacea::models::engine::{TinyTransformer, TransformerConfig};
use panacea::serve::{
    BatchPolicy, ModelRegistry, Payload, PrepareOptions, PreparedModel, Runtime, RuntimeConfig,
};
use panacea::tensor::{dist::DistributionKind, seeded_rng};

const REQUESTS: usize = 48;
const COLS_PER_REQUEST: usize = 2;

fn main() {
    // 1. Capture a real layer from the transformer engine: block0.fc2,
    //    calibrated on its genuine post-GELU activations.
    let engine = TinyTransformer::new_random(TransformerConfig::default(), 7);
    let mut rng = seeded_rng(8);
    let x = DistributionKind::Gaussian {
        mean: 0.0,
        std: 1.0,
    }
    .sample_matrix(64, 32, &mut rng);
    let capture = engine
        .captured_layers(&x)
        .into_iter()
        .find(|c| c.name == "block0.fc2")
        .expect("fc2 captured");
    println!(
        "prepared model: {} ({}x{} weights, calibrated on real activations)",
        capture.name,
        capture.weight.rows(),
        capture.weight.cols()
    );

    let registry = Arc::new(ModelRegistry::new());
    let model = registry
        .insert(PreparedModel::from_capture(&capture, PrepareOptions::default()).expect("prepare"));

    // 2. A fleet of independent requests (each a few activation columns).
    let requests: Vec<Payload> = (0..REQUESTS)
        .map(|_| {
            let f = DistributionKind::Gaussian {
                mean: 0.4,
                std: 0.3,
            }
            .sample_matrix(model.in_features(), COLS_PER_REQUEST, &mut rng);
            model.quantize(&f)
        })
        .collect();

    // 3. Sequential reference: each request alone through the pipeline.
    let t0 = Instant::now();
    let sequential: Vec<Payload> = requests
        .iter()
        .map(|payload| model.forward(payload).0)
        .collect();
    let sequential_time = t0.elapsed();

    // 4. Serve the same requests concurrently at several batch budgets.
    println!(
        "\n{:>9}  {:>8}  {:>12}  {:>12}  {:>10}  {:>9}",
        "max_batch", "workers", "throughput", "mean batch", "batches", "exact"
    );
    for (max_batch, workers) in [(1usize, 1usize), (8, 2), (32, 4)] {
        let runtime = Runtime::start(
            Arc::clone(&registry),
            RuntimeConfig {
                workers,
                policy: BatchPolicy {
                    max_batch,
                    max_wait: Duration::from_millis(2),
                },
            },
        );

        let t1 = Instant::now();
        // Concurrent submitters, one per chunk of 8 requests; each keeps
        // all its requests in flight at once (submit first, then wait).
        let outputs: Vec<Payload> = thread::scope(|s| {
            let handles: Vec<_> = requests
                .chunks(8)
                .map(|chunk| {
                    let runtime = &runtime;
                    let model = &model;
                    s.spawn(move || {
                        let pending: Vec<_> = chunk
                            .iter()
                            .map(|payload| {
                                runtime
                                    .submit_to(Arc::clone(model), payload.clone())
                                    .expect("queued")
                            })
                            .collect();
                        pending
                            .into_iter()
                            .map(|p| p.wait().expect("served").payload)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("submitter"))
                .collect()
        });
        let elapsed = t1.elapsed();

        let exact = outputs == sequential;
        let m = runtime.metrics();
        let cols = (REQUESTS * COLS_PER_REQUEST) as f64;
        println!(
            "{:>9}  {:>8}  {:>9.0} c/s  {:>9.1} c/b  {:>10}  {:>9}",
            max_batch,
            workers,
            cols / elapsed.as_secs_f64(),
            m.mean_batch_cols(),
            m.batches,
            if exact { "yes" } else { "NO" }
        );
        assert!(exact, "batched serving diverged from sequential execution");
    }

    println!(
        "\nsequential reference: {:.0} cols/s ({} requests, {} cols each)",
        (REQUESTS * COLS_PER_REQUEST) as f64 / sequential_time.as_secs_f64(),
        REQUESTS,
        COLS_PER_REQUEST,
    );
    println!("all batched outputs bit-identical to sequential execution ✓");
}
