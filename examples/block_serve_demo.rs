//! Transformer-block serving demo: a 2-block quantized decoder served
//! end-to-end through a localhost TCP gateway, with three gates:
//!
//! 1. every hidden-payload `infer` response is **bit-identical** to running the
//!    same hidden states directly through the prepared `QuantizedBlock`
//!    stack (f32 values survive the JSON wire exactly);
//! 2. the per-block SQNR against the float oracle
//!    (`models::engine::TinyTransformer`, same weights) clears a
//!    calibrated bound — quantization is the only divergence;
//! 3. a repeated sequence is replayed from the request cache.
//!
//! It also prints serving throughput in tokens/s at several batch
//! depths, plus the gateway's padding/cancellation counters that are now
//! reachable over the wire.
//!
//! Run with: `cargo run --release --example block_serve_demo`

use std::sync::Arc;
use std::time::Instant;

use panacea::block::{
    sqnr_report, zoo_hidden_states, zoo_transformer, BlockBuilder, QuantizedBlock,
};
use panacea::gateway::{Gateway, GatewayClient, GatewayConfig, GatewayServer};
use panacea::models::engine::TransformerConfig;
use panacea::models::zoo::Benchmark;
use panacea::serve::PreparedModel;
use panacea::tensor::Matrix;

const D_MODEL: usize = 32;
const TOKENS: usize = 4;
const MIN_SQNR_DB: f64 = 12.0;

fn hidden(tokens: usize, salt: usize) -> Matrix<f32> {
    Matrix::from_fn(D_MODEL, tokens, |r, c| {
        (((r * 29 + c * 11 + salt * 17) % 89) as f32 - 44.0) / 22.0
    })
}

fn direct(blocks: &[QuantizedBlock], x: &Matrix<f32>) -> Matrix<f32> {
    let mut h = x.clone();
    for b in blocks {
        h = b.forward(&h).0;
    }
    h
}

fn main() {
    // 1. A 2-block decoder with zoo-distribution weights, prepared once:
    //    the float oracle and the quantized blocks share exact weights.
    let cfg = TransformerConfig {
        d_model: D_MODEL,
        n_heads: 4,
        d_ff: 64,
        n_layers: 2,
    };
    let oracle = zoo_transformer(Benchmark::Gpt2, cfg, 7);
    let calibration = zoo_hidden_states(Benchmark::Gpt2, D_MODEL, 48, 8);
    let blocks = BlockBuilder::default()
        .prepare(&oracle, &calibration)
        .expect("prepare blocks");
    println!(
        "prepared {} quantized blocks (d_model={}, heads={}, d_ff={})",
        blocks.len(),
        cfg.d_model,
        cfg.n_heads,
        cfg.d_ff
    );

    // 2. Accuracy gate: per-block SQNR vs the float oracle on held-out
    //    zoo-distribution activations.
    let eval = zoo_hidden_states(Benchmark::Gpt2, D_MODEL, 32, 9);
    for r in sqnr_report(&blocks, &oracle, &eval) {
        println!(
            "  block {} SQNR vs float oracle: {:>5.1} dB",
            r.block, r.sqnr_db
        );
        assert!(
            r.sqnr_db > MIN_SQNR_DB,
            "block {} below the {MIN_SQNR_DB} dB bound",
            r.block
        );
    }

    // 3. Serve the block stack through a 2-shard TCP gateway.
    let model = PreparedModel::from_blocks("decoder", blocks.clone()).expect("servable");
    let gateway = Arc::new(Gateway::new(vec![model], GatewayConfig::default()));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    println!("\ngateway listening on {addr} (typed infer verb, hidden payloads)");

    // 4. Bit-exactness gate over real TCP, across sequence lengths.
    let mut client = GatewayClient::connect(addr).expect("connect");
    for (salt, tokens) in [(0usize, 1usize), (1, TOKENS), (2, 3), (3, 2)] {
        let x = hidden(tokens, salt);
        let expect = direct(&blocks, &x);
        let reply = client.infer_hidden("decoder", x).expect("served");
        let got = reply.payload.as_hidden().expect("hidden result");
        assert_eq!(got.shape(), (D_MODEL, tokens));
        for (a, b) in expect.iter().zip(got.iter()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "gateway diverged from direct QuantizedBlock execution"
            );
        }
    }
    println!("4 sequences (1–{TOKENS} tokens): all bit-exact vs direct block forward ✓");

    // 5. Cache replay gate.
    let x = hidden(TOKENS, 99);
    let cold = client.infer_hidden("decoder", x.clone()).expect("cold");
    let warm = client.infer_hidden("decoder", x).expect("warm");
    assert!(!cold.cache_hit && warm.cache_hit, "expected a cache replay");
    assert_eq!(cold.payload, warm.payload, "cached replay diverged");
    println!(
        "cache replay: cold {:?} → warm {:?}, outputs identical ✓",
        cold.latency, warm.latency
    );

    // 6. Throughput: concurrent clients fire each burst simultaneously
    //    (connections opened before the clock starts), so requests
    //    actually overlap and the per-shard batcher can coalesce them.
    //    Salts are globally unique so the cache serves none of this.
    println!("\nthroughput over TCP ({TOKENS}-token sequences):");
    let mut next_salt = 1000usize;
    for burst in [1usize, 8, 32] {
        let n_clients = burst.min(8);
        let per_client = burst / n_clients;
        let mut workers = Vec::new();
        for _ in 0..n_clients {
            let requests: Vec<Matrix<f32>> = (0..per_client)
                .map(|_| {
                    next_salt += 1;
                    hidden(TOKENS, next_salt)
                })
                .collect();
            let client = GatewayClient::connect(addr).expect("connect");
            workers.push((client, requests));
        }
        let barrier = Arc::new(std::sync::Barrier::new(n_clients));
        let started = Instant::now();
        let threads: Vec<_> = workers
            .into_iter()
            .map(|(mut client, requests)| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for x in requests {
                        let reply = client.infer_hidden("decoder", x).expect("served");
                        assert!(!reply.cache_hit, "throughput run hit the cache");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("client thread");
        }
        let elapsed = started.elapsed();
        let tokens_per_s = (burst * TOKENS) as f64 / elapsed.as_secs_f64();
        println!("  burst {burst:>3}: {tokens_per_s:>9.0} tokens/s  ({elapsed:?})");
    }

    // 7. The serving counters added to the wire protocol.
    let stats = client.stats().expect("stats");
    for (i, s) in stats.shards.iter().enumerate() {
        println!(
            "shard {i}: {} requests, {} batches, {} cols, padding {:.1}%, {} cancelled",
            s.requests,
            s.batches,
            s.columns,
            s.padding_overhead * 100.0,
            s.cancelled
        );
    }
    println!(
        "cache: {} hits / {} misses, {} entries",
        stats.cache.hits, stats.cache.misses, stats.cache.entries
    );
    println!("\nall block-serving gates passed ✓");
}
