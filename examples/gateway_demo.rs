//! Gateway demo: a sharded TCP front-end serving concurrent clients over
//! localhost, with three gates asserted along the way:
//!
//! 1. every response — cached or not — is bit-identical to running the
//!    same codes directly on a `panacea-serve` `Runtime`;
//! 2. a repeated payload is answered from the request cache
//!    (`cache_hit = true`) with the identical accumulators;
//! 3. a synchronized burst over a tiny admission limit is shed with
//!    explicit `Overloaded` rejections instead of queueing unboundedly.
//!
//! Run with: `cargo run --release --example gateway_demo`

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use panacea::gateway::{
    AdmissionConfig, CacheConfig, Gateway, GatewayClient, GatewayConfig, GatewayServer,
};
use panacea::serve::{
    BatchPolicy, LayerSpec, ModelRegistry, PrepareOptions, PreparedModel, Runtime, RuntimeConfig,
};
use panacea::tensor::{dist::DistributionKind, seeded_rng, Matrix};

const CLIENTS: usize = 6;
const REQUESTS_PER_CLIENT: usize = 8;

fn prepare_models(names: &[&str], seed: u64) -> Vec<Arc<PreparedModel>> {
    let mut rng = seeded_rng(seed);
    names
        .iter()
        .map(|name| {
            let w1 = DistributionKind::Gaussian {
                mean: 0.0,
                std: 0.05,
            }
            .sample_matrix(32, 64, &mut rng);
            let w2 = DistributionKind::Gaussian {
                mean: 0.0,
                std: 0.05,
            }
            .sample_matrix(8, 32, &mut rng);
            let calib = DistributionKind::TransformerAct {
                core_mean: 0.1,
                core_std: 0.4,
                pos_scale: 8.0,
                neg_scale: 5.0,
                outlier_frac: 0.02,
            }
            .sample_matrix(64, 24, &mut rng);
            Arc::new(
                PreparedModel::prepare(
                    *name,
                    &[LayerSpec::unbiased(w1), LayerSpec::unbiased(w2)],
                    &calib,
                    PrepareOptions::default(),
                )
                .expect("prepare"),
            )
        })
        .collect()
}

fn request_codes(model: &PreparedModel, cols: usize, salt: usize) -> Matrix<i32> {
    Matrix::from_fn(model.in_features(), cols, |r, c| {
        ((r * 31 + c * 7 + salt * 13) % 180) as i32
    })
}

fn main() {
    // 1. Prepare a model set once; every shard and the reference runtime
    //    share the same Arc'd prepared weights.
    let names = [
        "embed", "attn.qkv", "attn.out", "ffn.up", "ffn.down", "head",
    ];
    let models = prepare_models(&names, 7);
    println!(
        "prepared {} two-layer models (64→32→8), shared across shards",
        models.len()
    );

    // 2. Direct reference runtime: the bit-exactness oracle.
    let reference_registry = Arc::new(ModelRegistry::new());
    for m in &models {
        reference_registry.insert_shared(Arc::clone(m));
    }
    let reference = Runtime::start(Arc::clone(&reference_registry), RuntimeConfig::default());

    // 3. Gateway: 2 shards behind a TCP server on an ephemeral port.
    let gateway = Arc::new(Gateway::from_shared(
        models.clone(),
        GatewayConfig {
            shards: 2,
            ..GatewayConfig::default()
        },
    ));
    let server = GatewayServer::bind(Arc::clone(&gateway), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    println!("gateway listening on {addr} with {} shards", 2);

    println!("\nrendezvous routing (at idle load):");
    let mut shards_used = std::collections::HashSet::new();
    for name in &names {
        let shard = gateway.router().route(name);
        shards_used.insert(shard);
        println!("  {name:>9} → shard {shard}");
    }
    assert!(
        shards_used.len() >= 2,
        "model set should spread over ≥2 shards"
    );

    // 4. Concurrent clients over TCP; every reply checked against the
    //    direct runtime.
    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        let reference = reference.handle();
        let models = models.clone();
        handles.push(thread::spawn(move || {
            let mut client = GatewayClient::connect(addr).expect("connect");
            let mut shards_seen = std::collections::HashSet::new();
            for i in 0..REQUESTS_PER_CLIENT {
                let which = (t + i) % models.len();
                let model = &models[which];
                let codes = request_codes(model, 1 + (t + i) % 3, t * 100 + i);
                let direct = reference
                    .infer(model.name(), codes.clone())
                    .expect("direct runtime");
                let reply = client.infer_codes(model.name(), codes).expect("gateway");
                assert_eq!(
                    reply.payload, direct.payload,
                    "gateway diverged from direct Runtime::infer"
                );
                shards_seen.insert(reply.shard);
            }
            shards_seen
        }));
    }
    let mut shards_seen = std::collections::HashSet::new();
    for h in handles {
        shards_seen.extend(h.join().expect("client thread"));
    }
    println!(
        "\n{} clients × {} requests: all bit-exact vs. direct Runtime::infer ✓ (served by shards {:?})",
        CLIENTS, REQUESTS_PER_CLIENT, {
            let mut v: Vec<_> = shards_seen.iter().copied().collect();
            v.sort_unstable();
            v
        }
    );
    assert!(shards_seen.len() >= 2, "traffic never reached a 2nd shard");

    // 5. Cache replay: the same payload twice — second answer must be a
    //    bit-exact hit that never re-enters the AQS-GEMM pipeline.
    let mut client = GatewayClient::connect(addr).expect("connect");
    let model = &models[0];
    let payload = request_codes(model, 2, 9999);
    let direct = reference
        .infer(model.name(), payload.clone())
        .expect("direct runtime");
    let cold = client
        .infer_codes(model.name(), payload.clone())
        .expect("cold request");
    let warm = client
        .infer_codes(model.name(), payload)
        .expect("warm request");
    assert!(!cold.cache_hit && warm.cache_hit, "expected a cache replay");
    assert_eq!(cold.payload, direct.payload);
    assert_eq!(warm.payload, direct.payload, "cached output diverged");
    println!(
        "cache replay: cold {:?} → warm {:?}, outputs identical ✓",
        cold.latency, warm.latency
    );

    // 6. Overload: a second gateway with 2 admission permits and a
    //    lingering batcher, hit by a synchronized 16-client burst.
    let strict = Arc::new(Gateway::from_shared(
        models.clone(),
        GatewayConfig {
            shards: 2,
            runtime: RuntimeConfig {
                workers: 1,
                policy: BatchPolicy {
                    max_batch: 4096,
                    max_wait: Duration::from_millis(150),
                },
            },
            cache: CacheConfig {
                capacity: 0, // every request must face admission
                shards: 1,
                ..CacheConfig::default()
            },
            admission: AdmissionConfig {
                max_in_flight: 2,
                max_queue_wait: Duration::from_secs(10),
            },
            ..GatewayConfig::default()
        },
    ));
    let strict_server = GatewayServer::bind(Arc::clone(&strict), "127.0.0.1:0").expect("bind");
    let strict_addr = strict_server.local_addr();
    let barrier = Arc::new(Barrier::new(16));
    let mut burst = Vec::new();
    for t in 0..16 {
        let barrier = Arc::clone(&barrier);
        let model = Arc::clone(&models[t % models.len()]);
        burst.push(thread::spawn(move || {
            let mut client = GatewayClient::connect(strict_addr).expect("connect");
            let codes = request_codes(&model, 1, 5000 + t);
            barrier.wait();
            match client.infer_codes(model.name(), codes) {
                Ok(_) => false,
                Err(e) => {
                    assert!(e.is_overloaded(), "burst failed for another reason: {e}");
                    true
                }
            }
        }));
    }
    let rejected = burst
        .into_iter()
        .map(|h| h.join().expect("burst thread"))
        .filter(|&r| r)
        .count();
    println!(
        "overload burst: 16 concurrent requests over 2 permits → {} explicit Overloaded rejections, {} served ✓",
        rejected,
        16 - rejected
    );
    assert!(rejected > 0, "overload burst was silently absorbed");
    assert!(rejected < 16, "overload burst starved every request");

    // 7. Gateway-level metrics over the wire.
    let stats = client.stats().expect("stats");
    println!("\nper-shard metrics (main gateway):");
    println!(
        "{:>6}  {:>9}  {:>8}  {:>8}  {:>7}  {:>12}",
        "shard", "requests", "batches", "columns", "padded", "throughput"
    );
    for (i, s) in stats.shards.iter().enumerate() {
        println!(
            "{:>6}  {:>9}  {:>8}  {:>8}  {:>7}  {:>8.0} c/s",
            i, s.requests, s.batches, s.columns, s.padded_cols, s.columns_per_second
        );
    }
    println!(
        "cache: {} hits / {} misses ({:.0}% hit rate), {} entries, {} evictions",
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.hit_rate() * 100.0,
        stats.cache.entries,
        stats.cache.evictions
    );
    println!(
        "admission: {} admitted, {} rejected (capacity {}, queue-wait {})",
        stats.admission.admitted,
        stats.admission.total_rejected(),
        stats.admission.rejected_capacity,
        stats.admission.rejected_timeout
    );
    assert!(stats.cache.hits >= 1);
    println!("\nall gateway gates passed ✓");
}
