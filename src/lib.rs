//! # Panacea
//!
//! A from-scratch Rust reproduction of *"Panacea: Novel DNN Accelerator
//! using Accuracy-Preserving Asymmetric Quantization and Energy-Saving
//! Bit-Slice Sparsity"* (HPCA 2025).
//!
//! This facade crate re-exports the workspace sub-crates:
//!
//! * [`tensor`] — matrices, synthetic distributions, statistics;
//! * [`quant`] — symmetric/asymmetric PTQ, calibration, ZPM, DBS, OPTQ;
//! * [`bitslice`] — SBR & straightforward slicing, slice vectors, RLE;
//! * [`core`] — the AQS-GEMM (compression + skipping + compensation) and
//!   baseline GEMMs, plus the Table-I workload model;
//! * [`sim`] — the Panacea cycle/energy simulator and the SA-WS / SA-OS /
//!   SIMD / Sibia baseline accelerators;
//! * [`models`] — DNN benchmark layer inventories, a small forward engine,
//!   and quality-proxy metrics;
//! * [`block`] — the quantized transformer-block execution engine:
//!   pre-norm attention + MLP blocks whose four weight GEMMs run the AQS
//!   pipeline, glued by shared f32 attention/LayerNorm math and a
//!   requantized, coded-domain fc1→GELU→fc2 boundary;
//! * [`serve`] — the batched, multi-threaded inference runtime: a
//!   prepared-model registry, a dynamic batcher coalescing requests into
//!   the GEMM `N` dimension, and a worker pool with clean shutdown;
//! * [`gateway`] — the sharded TCP front-end over `serve`: line-delimited
//!   JSON protocol, rendezvous shard routing, a content-addressed LRU
//!   request cache, and admission control with explicit overload
//!   rejections;
//! * [`faultline`] — deterministic fault injection: seeded
//!   `FaultPlan` scenarios firing panics, injected latency, and I/O
//!   faults at named sites across the serving stack, compiled to one
//!   relaxed load per site when disarmed;
//! * [`telemetry`] — std-only observability primitives: sharded-atomic
//!   log-linear latency histograms with mergeable snapshots and
//!   p50/p90/p99 estimates, request-scoped span tracing with bounded
//!   slow-trace rings, and cache-padded sharded counters.
//!
//! # Quickstart
//!
//! ```
//! use panacea::quant::{AsymmetricQuantizer, Quantizer};
//! use panacea::tensor::{dist::DistributionKind, seeded_rng};
//!
//! let mut rng = seeded_rng(1);
//! let x = DistributionKind::AsymmetricGaussian { mean: 1.0, std: 0.5, skew: 0.1 }
//!     .sample_matrix(16, 16, &mut rng);
//! let q = AsymmetricQuantizer::calibrate(x.as_slice(), 8);
//! let xq = q.quantize_matrix(&x);
//! assert!(xq.iter().all(|&v| (0..=255).contains(&v)));
//! ```

pub use panacea_bitslice as bitslice;
pub use panacea_block as block;
pub use panacea_core as core;
pub use panacea_faultline as faultline;
pub use panacea_gateway as gateway;
pub use panacea_models as models;
pub use panacea_quant as quant;
pub use panacea_serve as serve;
pub use panacea_sim as sim;
pub use panacea_telemetry as telemetry;
pub use panacea_tensor as tensor;
